#include "schema/schema.h"

#include <set>

#include <gtest/gtest.h>

#include "schema/generators.h"

namespace mexi::schema {
namespace {

TEST(SchemaTest, TreeStructure) {
  Schema s("test");
  Attribute root;
  root.name = "root";
  const std::size_t r = s.AddAttribute(root, -1);
  Attribute child;
  child.name = "child";
  const std::size_t c = s.AddAttribute(child, static_cast<int>(r));
  Attribute grandchild;
  grandchild.name = "leaf";
  const std::size_t g = s.AddAttribute(grandchild, static_cast<int>(c));

  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.attribute(r).depth, 0);
  EXPECT_EQ(s.attribute(c).depth, 1);
  EXPECT_EQ(s.attribute(g).depth, 2);
  EXPECT_EQ(s.attribute(c).parent, static_cast<int>(r));
  EXPECT_EQ(s.MaxDepth(), 2);
  EXPECT_EQ(s.Roots(), (std::vector<std::size_t>{r}));
  EXPECT_EQ(s.Leaves(), (std::vector<std::size_t>{g}));
  EXPECT_THROW(s.AddAttribute(Attribute{}, 99), std::out_of_range);
}

TEST(SchemaTest, PreOrderVisitsParentsFirst) {
  Schema s("test");
  const auto named = [](const char* name) {
    Attribute attribute;
    attribute.name = name;
    return attribute;
  };
  const std::size_t r = s.AddAttribute(named("r"), -1);
  const std::size_t a = s.AddAttribute(named("a"), static_cast<int>(r));
  const std::size_t b = s.AddAttribute(named("b"), static_cast<int>(r));
  const std::size_t a1 = s.AddAttribute(named("a1"), static_cast<int>(a));
  const auto order = s.PreOrder();
  EXPECT_EQ(order, (std::vector<std::size_t>{r, a, a1, b}));
}

TEST(SchemaTest, EmptySchema) {
  Schema s("empty");
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.MaxDepth(), -1);
  EXPECT_TRUE(s.PreOrder().empty());
}

TEST(GeneratorTest, PurchaseOrderSizesMatchPaper) {
  const GeneratedPair pair = GeneratePurchaseOrderTask(2021);
  EXPECT_EQ(pair.source.size(), 142u);
  EXPECT_EQ(pair.target.size(), 46u);
  EXPECT_GT(pair.reference.size(), 20u);
}

TEST(GeneratorTest, OaeiSizesMatchPaper) {
  const GeneratedPair pair = GenerateOaeiTask(2016);
  EXPECT_EQ(pair.source.size(), 121u);
  EXPECT_EQ(pair.target.size(), 109u);
}

TEST(GeneratorTest, WarmupIsSmall) {
  const GeneratedPair pair = GenerateWarmupTask(7);
  EXPECT_LE(pair.source.size(), 12u);
  EXPECT_GE(pair.source.size(), 9u);
}

TEST(GeneratorTest, ReferencePairsAreValidLeaves) {
  const GeneratedPair pair = GeneratePurchaseOrderTask(5);
  for (const auto& [i, j] : pair.reference) {
    ASSERT_LT(i, pair.source.size());
    ASSERT_LT(j, pair.target.size());
    EXPECT_TRUE(pair.source.attribute(i).children.empty());
    EXPECT_TRUE(pair.target.attribute(j).children.empty());
    // Correspondence means equal concept ids.
    EXPECT_EQ(pair.source.attribute(i).concept_id,
              pair.target.attribute(j).concept_id);
    EXPECT_GE(pair.source.attribute(i).concept_id, 0);
  }
}

TEST(GeneratorTest, ReferenceCoversAllSharedConcepts) {
  const GeneratedPair pair = GeneratePurchaseOrderTask(6);
  // Every (source leaf, target leaf) pair with equal concept ids must be
  // in the reference.
  std::set<std::pair<std::size_t, std::size_t>> ref(pair.reference.begin(),
                                                    pair.reference.end());
  for (std::size_t i : pair.source.Leaves()) {
    for (std::size_t j : pair.target.Leaves()) {
      const auto& a = pair.source.attribute(i);
      const auto& b = pair.target.attribute(j);
      if (a.concept_id >= 0 && a.concept_id == b.concept_id) {
        EXPECT_EQ(ref.count({i, j}), 1u);
      }
    }
  }
}

TEST(GeneratorTest, ContainsOneToManyCorrespondences) {
  const GeneratedPair pair = GeneratePurchaseOrderTask(8);
  std::set<std::size_t> targets;
  bool has_duplicate_target = false;
  for (const auto& [i, j] : pair.reference) {
    if (!targets.insert(j).second) has_duplicate_target = true;
  }
  EXPECT_TRUE(has_duplicate_target)
      << "expected 1:n correspondences like poDay+poTime -> orderDate";
}

TEST(GeneratorTest, DeterministicForSeed) {
  const GeneratedPair a = GeneratePurchaseOrderTask(99);
  const GeneratedPair b = GeneratePurchaseOrderTask(99);
  ASSERT_EQ(a.source.size(), b.source.size());
  for (std::size_t i = 0; i < a.source.size(); ++i) {
    EXPECT_EQ(a.source.attribute(i).name, b.source.attribute(i).name);
  }
  EXPECT_EQ(a.reference, b.reference);
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const GeneratedPair a = GeneratePurchaseOrderTask(1);
  const GeneratedPair b = GeneratePurchaseOrderTask(2);
  bool any_difference = a.reference != b.reference;
  for (std::size_t i = 0; i < a.source.size() && !any_difference; ++i) {
    any_difference = a.source.attribute(i).name != b.source.attribute(i).name;
  }
  EXPECT_TRUE(any_difference);
}

TEST(GeneratorTest, UniqueNamesWithinSchema) {
  const GeneratedPair pair = GenerateOaeiTask(3);
  std::set<std::string> names;
  for (const auto& a : pair.source.attributes()) {
    EXPECT_TRUE(names.insert(a.name).second) << "duplicate: " << a.name;
  }
}

TEST(GeneratorTest, RejectsTinySizes) {
  GeneratorConfig config;
  config.source_size = 3;
  EXPECT_THROW(GeneratePair(config), std::invalid_argument);
}

struct DomainCase {
  Domain domain;
  std::size_t source;
  std::size_t target;
};

class GeneratorDomainTest : public ::testing::TestWithParam<DomainCase> {};

TEST_P(GeneratorDomainTest, ProducesExactSizesAndValidReference) {
  GeneratorConfig config;
  config.domain = GetParam().domain;
  config.source_size = GetParam().source;
  config.target_size = GetParam().target;
  config.seed = 55;
  const GeneratedPair pair = GeneratePair(config);
  EXPECT_EQ(pair.source.size(), GetParam().source);
  EXPECT_EQ(pair.target.size(), GetParam().target);
  EXPECT_FALSE(pair.reference.empty());
  for (const auto& [i, j] : pair.reference) {
    EXPECT_LT(i, pair.source.size());
    EXPECT_LT(j, pair.target.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Domains, GeneratorDomainTest,
    ::testing::Values(DomainCase{Domain::kPurchaseOrder, 142, 46},
                      DomainCase{Domain::kPurchaseOrder, 60, 30},
                      DomainCase{Domain::kBibliography, 121, 109},
                      DomainCase{Domain::kBibliography, 40, 25},
                      DomainCase{Domain::kUniversity, 12, 10},
                      DomainCase{Domain::kUniversity, 10, 9},
                      DomainCase{Domain::kEntityResolution, 58, 40},
                      DomainCase{Domain::kEntityResolution, 30, 20}));

TEST(GeneratorTest, EntityResolutionTaskShape) {
  const GeneratedPair pair = GenerateEntityResolutionTask(2022);
  EXPECT_EQ(pair.source.size(), 58u);
  EXPECT_EQ(pair.target.size(), 40u);
  EXPECT_GT(pair.reference.size(), 10u);
}

}  // namespace
}  // namespace mexi::schema
