#include <cmath>

#include <gtest/gtest.h>

#include "core/features/aggregated_features.h"
#include "core/features/consensus.h"
#include "core/features/consistency_features.h"
#include "core/features/feature_vector.h"
#include "core/features/sequential_features.h"
#include "core/features/spatial_features.h"

namespace mexi {
namespace {

matching::DecisionHistory SampleHistory() {
  matching::DecisionHistory h;
  h.Add({0, 0, 0.9, 5.0});
  h.Add({1, 1, 0.7, 12.0});
  h.Add({2, 2, 0.4, 30.0});
  h.Add({0, 0, 0.8, 41.0});  // mind change
  h.Add({3, 1, 0.6, 55.0});
  return h;
}

matching::MovementMap SampleMovement() {
  matching::MovementMap map(1280.0, 800.0);
  map.Add({200.0, 100.0, matching::MovementType::kMove, 1.0});
  map.Add({800.0, 120.0, matching::MovementType::kMove, 2.0});
  map.Add({820.0, 130.0, matching::MovementType::kLeftClick, 3.0});
  map.Add({640.0, 600.0, matching::MovementType::kScroll, 4.0});
  map.Add({600.0, 620.0, matching::MovementType::kLeftClick, 6.0});
  return map;
}

TEST(FeatureVectorTest, NamesStayAligned) {
  FeatureVector v;
  v.Add("a", 1.0);
  v.Add("b", 2.0);
  FeatureVector w;
  w.Add("c", 3.0);
  v.Extend(w);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a"), 1.0);
  EXPECT_DOUBLE_EQ(v.at("c"), 3.0);
  EXPECT_TRUE(v.Has("b"));
  EXPECT_FALSE(v.Has("z"));
  EXPECT_THROW(v.at("z"), std::out_of_range);
}

TEST(LrsmFeaturesTest, PrefixedPredictorNames) {
  const FeatureVector phi = LrsmFeatures(SampleHistory(), 5, 4);
  EXPECT_GT(phi.size(), 10u);
  EXPECT_TRUE(phi.Has("lrsm.dom"));
  EXPECT_TRUE(phi.Has("lrsm.pca1"));
  EXPECT_TRUE(phi.Has("lrsm.normsinf"));
  for (double v : phi.values()) EXPECT_TRUE(std::isfinite(v));
}

TEST(BehavioralFeaturesTest, KnownAggregates) {
  const FeatureVector phi = BehavioralFeatures(SampleHistory());
  EXPECT_DOUBLE_EQ(phi.at("beh.countDecisions"), 5.0);
  EXPECT_DOUBLE_EQ(phi.at("beh.countDistinctCorr"), 4.0);
  EXPECT_DOUBLE_EQ(phi.at("beh.countMindChange"), 1.0);
  EXPECT_NEAR(phi.at("beh.avgConf"), (0.9 + 0.7 + 0.4 + 0.8 + 0.6) / 5.0,
              1e-12);
  EXPECT_DOUBLE_EQ(phi.at("beh.totalTime"), 50.0);
  EXPECT_DOUBLE_EQ(phi.at("beh.maxTime"), 18.0);
  EXPECT_DOUBLE_EQ(phi.at("beh.firstConf"), 0.9);
  EXPECT_DOUBLE_EQ(phi.at("beh.lastConf"), 0.6);
}

TEST(BehavioralFeaturesTest, EmptyHistoryIsFinite) {
  const FeatureVector phi = BehavioralFeatures(matching::DecisionHistory());
  for (double v : phi.values()) EXPECT_TRUE(std::isfinite(v));
}

TEST(MouseFeaturesTest, CountsAndRegionShares) {
  const FeatureVector phi = MouseFeatures(SampleMovement());
  EXPECT_DOUBLE_EQ(phi.at("mou.countEvents"), 5.0);
  EXPECT_DOUBLE_EQ(phi.at("mou.countLClick"), 2.0);
  EXPECT_DOUBLE_EQ(phi.at("mou.countScroll"), 1.0);
  EXPECT_DOUBLE_EQ(phi.at("mou.clickRate"), 0.4);
  // Events at (200,100) -> source tree; (800..820,~125) -> target tree;
  // (600..640, ~610) -> match table.
  EXPECT_NEAR(phi.at("mou.share.sourceTree"), 0.2, 1e-12);
  EXPECT_NEAR(phi.at("mou.share.targetTree"), 0.4, 1e-12);
  EXPECT_NEAR(phi.at("mou.share.matchTable"), 0.4, 1e-12);
}

TEST(ConsensusMapTest, SharesAndForeignPairs) {
  matching::DecisionHistory h1, h2;
  h1.Add({0, 0, 0.9, 1.0});
  h1.Add({1, 1, 0.8, 2.0});
  h2.Add({0, 0, 0.7, 1.0});
  const ConsensusMap consensus({&h1, &h2}, 3, 3);
  EXPECT_DOUBLE_EQ(consensus.Share(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(consensus.Share(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(consensus.Share(2, 2), 0.0);
  // Out-of-range (foreign task) pairs are simply unknown.
  EXPECT_DOUBLE_EQ(consensus.Share(99, 99), 0.0);
  EXPECT_DOUBLE_EQ(consensus.Count(0, 0), 2.0);
}

TEST(ConsensusMapTest, MeanShare) {
  matching::DecisionHistory h1, h2;
  h1.Add({0, 0, 0.9, 1.0});
  h2.Add({0, 0, 0.7, 1.0});
  h2.Add({1, 1, 0.7, 2.0});
  const ConsensusMap consensus({&h1, &h2}, 2, 2);
  // h2's pairs: (0,0) share 1.0, (1,1) share 0.5 -> mean 0.75.
  EXPECT_DOUBLE_EQ(consensus.MeanShare(h2), 0.75);
  EXPECT_DOUBLE_EQ(ConsensusMap().MeanShare(h2), 0.0);
}

TEST(ConsistencyFeaturesTest, MajorityAndMinorityShares) {
  matching::DecisionHistory crowd1, crowd2, crowd3;
  crowd1.Add({0, 0, 0.9, 1.0});
  crowd2.Add({0, 0, 0.8, 1.0});
  crowd3.Add({0, 0, 0.7, 1.0});
  const ConsensusMap consensus({&crowd1, &crowd2, &crowd3}, 3, 3);

  matching::DecisionHistory mine;
  mine.Add({0, 0, 0.9, 1.0});  // consensus 1.0
  mine.Add({2, 2, 0.8, 2.0});  // consensus 0.0 (idiosyncratic)
  const FeatureVector phi = ConsistencyFeatures(mine, consensus);
  EXPECT_DOUBLE_EQ(phi.at("con.meanConsensus"), 0.5);
  EXPECT_DOUBLE_EQ(phi.at("con.minorityShare"), 0.5);
  EXPECT_DOUBLE_EQ(phi.at("con.majorityShare"), 0.5);
  // Later decisions hit lower consensus -> negative temporal trend.
  EXPECT_LT(phi.at("con.temporalConsensusTrend"), 0.0);
}

TEST(SequentialFeaturesTest, EncodingShape) {
  SequentialFeatureExtractor extractor;
  const ml::Sequence seq = extractor.Encode(SampleHistory());
  ASSERT_EQ(seq.size(), 5u);
  ASSERT_EQ(seq[0].size(), 3u);
  EXPECT_DOUBLE_EQ(seq[0][0], 0.9);  // confidence channel
  EXPECT_DOUBLE_EQ(seq[0][1], 0.0);  // first decision has no elapsed time
  EXPECT_GT(seq[1][1], 0.0);
  EXPECT_LT(seq[1][1], 1.0);  // squashed
}

TEST(SequentialFeaturesTest, FitThenExtractCoefficients) {
  SequentialFeatureExtractor::Config config =
      SequentialFeatureExtractor::DefaultConfig();
  config.lstm.epochs = 4;
  SequentialFeatureExtractor extractor(config);
  EXPECT_THROW(extractor.Extract(SampleHistory()), std::logic_error);

  matching::DecisionHistory a = SampleHistory();
  matching::DecisionHistory b;
  b.Add({1, 0, 0.3, 2.0});
  b.Add({2, 1, 0.2, 9.0});
  ExpertLabel expert;
  expert.precise = expert.thorough = true;
  const ConsensusMap consensus({&a, &b}, 5, 4);
  extractor.Fit({&a, &b}, {expert, ExpertLabel{}}, consensus);

  const FeatureVector phi = extractor.Extract(a);
  ASSERT_EQ(phi.size(), 4u);
  EXPECT_TRUE(phi.Has("seq.precise"));
  EXPECT_TRUE(phi.Has("seq.calibrated"));
  for (double v : phi.values()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(SpatialFeaturesTest, FitThenExtractSixteenCoefficients) {
  SpatialFeatureExtractor::Config config =
      SpatialFeatureExtractor::DefaultConfig();
  config.cnn.epochs = 2;
  config.pretrain_images = 8;
  config.pretrain_epochs = 1;
  SpatialFeatureExtractor extractor(config);
  EXPECT_THROW(extractor.Extract(SampleMovement()), std::logic_error);

  const matching::MovementMap a = SampleMovement();
  matching::MovementMap b(1280.0, 800.0);
  b.Add({100.0, 700.0, matching::MovementType::kScroll, 1.0});
  ExpertLabel expert;
  expert.correlated = true;
  extractor.Fit({&a, &b}, {expert, ExpertLabel{}});

  const FeatureVector phi = extractor.Extract(a);
  ASSERT_EQ(phi.size(), 16u);
  EXPECT_TRUE(phi.Has("spa.Move.precise"));
  EXPECT_TRUE(phi.Has("spa.SMouse.calibrated"));
  EXPECT_TRUE(phi.Has("spa.LMouse.correlated"));
  EXPECT_TRUE(phi.Has("spa.RMouse.thorough"));
  for (double v : phi.values()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(SpatialFeaturesTest, MapNames) {
  EXPECT_STREQ(SpatialFeatureExtractor::MapName(
                   matching::MovementType::kScroll),
               "SMouse");
  EXPECT_STREQ(SpatialFeatureExtractor::MapName(
                   matching::MovementType::kMove),
               "Move");
}

}  // namespace
}  // namespace mexi
