#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "ml/nn/adam.h"
#include "ml/nn/layers.h"
#include "ml/mlp.h"
#include "ml/nn/network.h"

namespace mexi::ml {
namespace {

TEST(AdamTest, MinimizesQuadratic) {
  // Minimize (x - 3)^2 by hand-fed gradients.
  Matrix x(1, 1, 0.0);
  Matrix grad(1, 1, 0.0);
  AdamOptimizer::Config config;
  config.learning_rate = 0.1;
  AdamOptimizer adam(config);
  adam.Register(&x, &grad);
  for (int step = 0; step < 500; ++step) {
    grad(0, 0) = 2.0 * (x(0, 0) - 3.0);
    adam.Step();
  }
  EXPECT_NEAR(x(0, 0), 3.0, 1e-3);
  EXPECT_EQ(adam.t(), 500);
}

TEST(AdamTest, StepZeroesGradients) {
  Matrix x(1, 2, 0.0);
  Matrix grad(1, 2, 5.0);
  AdamOptimizer adam;
  adam.Register(&x, &grad);
  adam.Step();
  EXPECT_DOUBLE_EQ(grad(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(grad(0, 1), 0.0);
}

TEST(AdamTest, RegisterValidatesShapes) {
  Matrix x(2, 2), g(2, 3);
  AdamOptimizer adam;
  EXPECT_THROW(adam.Register(&x, &g), std::invalid_argument);
  EXPECT_THROW(adam.Register(nullptr, &g), std::invalid_argument);
}

/// Numerical gradient check for the dense layer.
TEST(DenseLayerTest, GradientMatchesFiniteDifference) {
  stats::Rng rng(1);
  DenseLayer dense(3, 2, rng);
  Matrix input = Matrix::RandomGaussian(4, 3, 1.0, rng);
  const Matrix target(4, 2, 0.3);

  auto loss_of = [&](const Matrix& x) {
    const Matrix out = dense.Forward(x, false);
    double loss = 0.0;
    for (std::size_t i = 0; i < out.data().size(); ++i) {
      const double diff = out.data()[i] - target.data()[i];
      loss += 0.5 * diff * diff;
    }
    return loss;
  };

  // Analytical input gradient.
  const Matrix out = dense.Forward(input, true);
  Matrix grad_out = out - target;
  const Matrix grad_in = dense.Backward(grad_out);

  const double eps = 1e-6;
  for (std::size_t i = 0; i < input.data().size(); ++i) {
    Matrix plus = input, minus = input;
    plus.data()[i] += eps;
    minus.data()[i] -= eps;
    const double numeric = (loss_of(plus) - loss_of(minus)) / (2.0 * eps);
    EXPECT_NEAR(grad_in.data()[i], numeric, 1e-4);
  }
}

TEST(ActivationTest, ReluForwardBackward) {
  ReluLayer relu;
  const Matrix out = relu.Forward(Matrix::FromRows({{-1.0, 2.0}}), true);
  EXPECT_DOUBLE_EQ(out(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out(0, 1), 2.0);
  const Matrix grad = relu.Backward(Matrix::FromRows({{5.0, 5.0}}));
  EXPECT_DOUBLE_EQ(grad(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(grad(0, 1), 5.0);
}

TEST(ActivationTest, SigmoidValuesAndGradient) {
  SigmoidLayer sigmoid;
  const Matrix out = sigmoid.Forward(Matrix::FromRows({{0.0}}), true);
  EXPECT_DOUBLE_EQ(out(0, 0), 0.5);
  const Matrix grad = sigmoid.Backward(Matrix::FromRows({{1.0}}));
  EXPECT_DOUBLE_EQ(grad(0, 0), 0.25);  // s(1-s) at s=0.5
}

TEST(ActivationTest, TanhGradient) {
  TanhLayer tanh_layer;
  const Matrix out = tanh_layer.Forward(Matrix::FromRows({{0.5}}), true);
  EXPECT_NEAR(out(0, 0), std::tanh(0.5), 1e-12);
  const Matrix grad = tanh_layer.Backward(Matrix::FromRows({{1.0}}));
  EXPECT_NEAR(grad(0, 0), 1.0 - std::tanh(0.5) * std::tanh(0.5), 1e-12);
}

TEST(DropoutTest, IdentityInInference) {
  DropoutLayer dropout(0.5, 7);
  const Matrix input = Matrix::FromRows({{1.0, 2.0, 3.0}});
  const Matrix out = dropout.Forward(input, false);
  EXPECT_TRUE(out.AlmostEquals(input, 0.0));
}

TEST(DropoutTest, TrainingPreservesExpectation) {
  DropoutLayer dropout(0.5, 8);
  const Matrix input(1, 10000, 1.0);
  const Matrix out = dropout.Forward(input, true);
  // Inverted dropout: E[out] == input.
  EXPECT_NEAR(out.Sum() / 10000.0, 1.0, 0.05);
  // Entries are either 0 or 1/keep.
  for (double v : out.data()) {
    EXPECT_TRUE(v == 0.0 || std::fabs(v - 2.0) < 1e-12);
  }
  EXPECT_THROW(DropoutLayer(1.0, 9), std::invalid_argument);
}

TEST(BinaryCrossEntropyTest, KnownValues) {
  const Matrix p = Matrix::FromRows({{0.5, 0.9}});
  const Matrix y = Matrix::FromRows({{1.0, 1.0}});
  EXPECT_NEAR(BinaryCrossEntropy::Loss(p, y),
              (-std::log(0.5) - std::log(0.9)) / 2.0, 1e-12);
  EXPECT_THROW(BinaryCrossEntropy::Loss(p, Matrix(2, 2)),
               std::invalid_argument);
}

TEST(NetworkTest, LearnsXor) {
  stats::Rng rng(10);
  AdamOptimizer::Config adam;
  adam.learning_rate = 0.05;
  Network net(adam);
  net.Add(std::make_unique<DenseLayer>(2, 8, rng));
  net.Add(std::make_unique<TanhLayer>());
  net.Add(std::make_unique<DenseLayer>(8, 1, rng));
  net.Add(std::make_unique<SigmoidLayer>());

  const Matrix inputs = Matrix::FromRows(
      {{0.0, 0.0}, {0.0, 1.0}, {1.0, 0.0}, {1.0, 1.0}});
  const Matrix targets = Matrix::FromRows({{0.0}, {1.0}, {1.0}, {0.0}});
  stats::Rng train_rng(11);
  const double loss = net.Fit(inputs, targets, 600, 4, train_rng);
  EXPECT_LT(loss, 0.1);
  const Matrix pred = net.Predict(inputs);
  EXPECT_LT(pred(0, 0), 0.3);
  EXPECT_GT(pred(1, 0), 0.7);
  EXPECT_GT(pred(2, 0), 0.7);
  EXPECT_LT(pred(3, 0), 0.3);
}

TEST(NetworkTest, TrainStepReducesLoss) {
  stats::Rng rng(12);
  Network net;
  net.Add(std::make_unique<DenseLayer>(3, 1, rng));
  net.Add(std::make_unique<SigmoidLayer>());
  const Matrix x = Matrix::RandomGaussian(16, 3, 1.0, rng);
  Matrix y(16, 1);
  for (std::size_t i = 0; i < 16; ++i) y(i, 0) = x(i, 0) > 0.0 ? 1.0 : 0.0;
  const double first = net.TrainStep(x, y);
  double last = first;
  for (int i = 0; i < 200; ++i) last = net.TrainStep(x, y);
  EXPECT_LT(last, first);
}

TEST(NetworkTest, AddAfterTrainingRejected) {
  stats::Rng rng(13);
  Network net;
  net.Add(std::make_unique<DenseLayer>(1, 1, rng));
  net.Add(std::make_unique<SigmoidLayer>());
  net.TrainStep(Matrix(1, 1, 0.5), Matrix(1, 1, 1.0));
  EXPECT_THROW(net.Add(std::make_unique<ReluLayer>()), std::logic_error);
}

TEST(MlpClassifierTest, LearnsXorViaNetworkStack) {
  stats::Rng rng(40);
  Dataset train;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.Uniform(-1.0, 1.0);
    const double y = rng.Uniform(-1.0, 1.0);
    train.Add({x, y}, (x > 0.0) != (y > 0.0) ? 1 : 0);
  }
  MlpClassifier mlp;
  mlp.Fit(train);
  int correct = 0;
  for (std::size_t i = 0; i < train.NumExamples(); ++i) {
    correct += mlp.Predict(train.features[i]) == train.labels[i];
  }
  EXPECT_GT(correct, 260);
  auto clone = mlp.Clone();
  EXPECT_FALSE(clone->fitted());
  EXPECT_EQ(clone->Name(), "MLP");
}

}  // namespace
}  // namespace mexi::ml
