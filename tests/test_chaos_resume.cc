// Kill-and-resume chaos scenarios for the checkpoint substrate.
//
// The contract under test: a training run that dies mid-flight (here, an
// injected in-process abort standing in for SIGKILL) and is resumed from
// its checkpoint directory produces *bitwise-identical* final state to a
// run that was never interrupted — losses, predictions, and experiment
// results compare with operator== on doubles, not tolerances.

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/evaluation.h"
#include "ml/gradient_boosting.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "ml/nn/cnn.h"
#include "ml/nn/lstm.h"
#include "parallel/parallel_for.h"
#include "robust/fault_injection.h"
#include "robust/status.h"
#include "stats/rng.h"
#include "test_fixtures.h"

namespace mexi {
namespace {

namespace fs = std::filesystem;
using robust::FaultInjector;
using robust::StatusCode;
using robust::StatusError;

class ChaosResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("mexi_chaos_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::Global().Clear();
    parallel::SetThreads(0);  // back to auto for later tests
    fs::remove_all(dir_);
  }

  std::string Dir() const { return dir_.string(); }

  static void FlipByte(const std::string& path, std::size_t offset) {
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file) << path;
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    file.get(byte);
    file.seekp(static_cast<std::streamoff>(offset));
    file.put(static_cast<char>(byte ^ 0x04));
  }

  fs::path dir_;
};

ml::LstmSequenceModel::Config SmallLstmConfig() {
  ml::LstmSequenceModel::Config config;
  config.input_dim = 2;
  config.hidden_dim = 6;
  config.dense_dim = 8;
  config.num_labels = 3;
  config.dropout = 0.4;
  config.epochs = 4;
  config.batch_size = 4;
  config.seed = 71;
  return config;
}

void MakeLstmData(std::vector<ml::Sequence>* sequences,
                  std::vector<std::vector<double>>* targets) {
  stats::Rng rng(72);
  for (int i = 0; i < 8; ++i) {
    ml::Sequence seq;
    const std::size_t len = 2 + rng.UniformIndex(4);
    for (std::size_t t = 0; t < len; ++t) {
      seq.push_back({rng.Uniform(), rng.Gaussian()});
    }
    sequences->push_back(std::move(seq));
    targets->push_back({rng.Bernoulli(0.5) ? 1.0 : 0.0,
                        rng.Bernoulli(0.5) ? 1.0 : 0.0,
                        rng.Bernoulli(0.5) ? 1.0 : 0.0});
  }
}

TEST_F(ChaosResumeTest, LstmAbortedRunResumesBitwiseIdentical) {
  std::vector<ml::Sequence> sequences;
  std::vector<std::vector<double>> targets;
  MakeLstmData(&sequences, &targets);
  const auto config = SmallLstmConfig();

  // Reference: never interrupted, never checkpointed.
  ml::LstmSequenceModel uninterrupted(config);
  const double reference_loss = uninterrupted.Fit(sequences, targets);

  // Victim: checkpointing armed, killed right after epoch 2's commit.
  ml::LstmSequenceModel victim(config);
  victim.EnableCheckpointing(Dir());
  FaultInjector::Global().Configure("abort@epoch:2");
  try {
    victim.Fit(sequences, targets);
    FAIL() << "injected abort did not fire";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kAborted);
  }
  FaultInjector::Global().Clear();

  // Survivor: a fresh process would construct a fresh model and point it
  // at the same directory; it must pick up at epoch 2 and land exactly
  // where the uninterrupted run did.
  ml::LstmSequenceModel survivor(config);
  survivor.EnableCheckpointing(Dir());
  const double resumed_loss = survivor.Fit(sequences, targets);

  EXPECT_EQ(resumed_loss, reference_loss);
  for (const auto& seq : sequences) {
    EXPECT_EQ(survivor.Predict(seq), uninterrupted.Predict(seq));
  }
}

TEST_F(ChaosResumeTest, LstmResumeSurvivesCorruptedNewestCheckpoint) {
  std::vector<ml::Sequence> sequences;
  std::vector<std::vector<double>> targets;
  MakeLstmData(&sequences, &targets);
  const auto config = SmallLstmConfig();

  ml::LstmSequenceModel uninterrupted(config);
  const double reference_loss = uninterrupted.Fit(sequences, targets);

  ml::LstmSequenceModel victim(config);
  victim.EnableCheckpointing(Dir());
  FaultInjector::Global().Configure("abort@epoch:3");
  EXPECT_THROW(victim.Fit(sequences, targets), StatusError);
  FaultInjector::Global().Clear();

  // Bit rot eats the newest generation (epoch 3); the resume must fall
  // back to the previous generation (epoch 2) and still converge to the
  // identical final state — just redoing one more epoch.
  FlipByte(Dir() + "/lstm.bin", 48);

  ml::LstmSequenceModel survivor(config);
  survivor.EnableCheckpointing(Dir());
  const double resumed_loss = survivor.Fit(sequences, targets);

  EXPECT_EQ(resumed_loss, reference_loss);
  for (const auto& seq : sequences) {
    EXPECT_EQ(survivor.Predict(seq), uninterrupted.Predict(seq));
  }
}

TEST_F(ChaosResumeTest, LstmRejectsCheckpointFromDifferentRun) {
  std::vector<ml::Sequence> sequences;
  std::vector<std::vector<double>> targets;
  MakeLstmData(&sequences, &targets);
  auto config = SmallLstmConfig();

  ml::LstmSequenceModel original(config);
  original.EnableCheckpointing(Dir());
  original.Fit(sequences, targets);

  // Same directory, different hyper-parameters: silently blending two
  // runs would corrupt training, so this must fail fast.
  config.seed = 72;
  ml::LstmSequenceModel other(config);
  other.EnableCheckpointing(Dir());
  try {
    other.Fit(sequences, targets);
    FAIL() << "foreign checkpoint accepted";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(ChaosResumeTest, LstmDivergenceGuardTripsOnInjectedNan) {
  std::vector<ml::Sequence> sequences;
  std::vector<std::vector<double>> targets;
  MakeLstmData(&sequences, &targets);

  ml::LstmSequenceModel model(SmallLstmConfig());
  FaultInjector::Global().Configure("nan@lstm_grad:3");
  try {
    model.Fit(sequences, targets);
    FAIL() << "NaN loss not caught";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kDivergence);
    EXPECT_NE(e.status().message().find("epoch"), std::string::npos);
  }
}

TEST_F(ChaosResumeTest, CnnAbortedFineTuneResumesBitwiseIdentical) {
  ml::CnnImageModel::Config config;
  config.image_rows = 8;
  config.image_cols = 8;
  config.conv1_filters = 2;
  config.conv2_filters = 3;
  config.dense_dim = 6;
  config.num_labels = 3;
  config.epochs = 2;
  config.batch_size = 2;
  config.seed = 73;

  stats::Rng rng(74);
  std::vector<ml::Image> images;
  std::vector<std::vector<double>> targets;
  for (int i = 0; i < 4; ++i) {
    images.push_back(ml::Matrix::RandomGaussian(8, 8, 1.0, rng));
    targets.push_back({rng.Bernoulli(0.5) ? 1.0 : 0.0,
                       rng.Bernoulli(0.5) ? 1.0 : 0.0,
                       rng.Bernoulli(0.5) ? 1.0 : 0.0});
  }

  // Reference: the paper's pretrain -> fine-tune protocol, undisturbed.
  ml::CnnImageModel uninterrupted(config);
  uninterrupted.Fit(images, targets, 1);
  const double reference_loss = uninterrupted.Fit(images, targets);

  // Victim: dies after fine-tune epoch 1 (epoch hits: pretrain 1 = #1,
  // fine-tune 1 = #2). Each Fit phase owns its own checkpoint stem.
  ml::CnnImageModel victim(config);
  victim.EnableCheckpointing(Dir());
  victim.Fit(images, targets, 1);
  FaultInjector::Global().Configure("abort@epoch:2");
  try {
    victim.Fit(images, targets);
    FAIL() << "injected abort did not fire";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kAborted);
  }
  FaultInjector::Global().Clear();

  // Survivor replays the same call sequence: the finished pretrain phase
  // loads as a no-op, the fine-tune phase resumes at epoch 2.
  ml::CnnImageModel survivor(config);
  survivor.EnableCheckpointing(Dir());
  survivor.Fit(images, targets, 1);
  const double resumed_loss = survivor.Fit(images, targets);

  EXPECT_EQ(resumed_loss, reference_loss);
  for (const auto& img : images) {
    EXPECT_EQ(survivor.Predict(img), uninterrupted.Predict(img));
  }
}

ml::Dataset MakeBinaryDataset(int rows, std::uint64_t seed) {
  ml::Dataset data;
  stats::Rng rng(seed);
  for (int i = 0; i < rows; ++i) {
    const int label = i % 2;
    data.Add({rng.Gaussian(label == 1 ? 0.8 : -0.8, 1.0), rng.Gaussian(),
              rng.Uniform()},
             label);
  }
  return data;
}

TEST_F(ChaosResumeTest, MlpAbortedRunResumesBitwiseIdentical) {
  const auto data = MakeBinaryDataset(24, 811);
  const auto probe = MakeBinaryDataset(8, 812);

  ml::MlpClassifier::Config config;
  config.hidden_layers = {6};
  config.epochs = 5;
  config.batch_size = 4;

  // Reference: never interrupted, never checkpointed.
  ml::MlpClassifier uninterrupted(config);
  uninterrupted.Fit(data);

  // Victim: dies right after epoch 2's checkpoint commits. The epoch
  // fault site is only consulted on checkpointed fits, so the reference
  // run above was untouched by the arming below.
  ml::MlpClassifier victim(config);
  victim.EnableCheckpointing(Dir());
  FaultInjector::Global().Configure("abort@epoch:2");
  try {
    victim.Fit(data);
    FAIL() << "injected abort did not fire";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kAborted);
  }
  FaultInjector::Global().Clear();

  // Survivor: fresh model, same directory — must pick up at epoch 2 and
  // land exactly where the uninterrupted run did.
  ml::MlpClassifier survivor(config);
  survivor.EnableCheckpointing(Dir());
  survivor.Fit(data);

  for (const auto& row : probe.features) {
    EXPECT_EQ(survivor.PredictProba(row), uninterrupted.PredictProba(row));
  }
}

TEST_F(ChaosResumeTest, MlpRejectsCheckpointFromDifferentConfig) {
  const auto data = MakeBinaryDataset(24, 813);

  ml::MlpClassifier::Config config;
  config.hidden_layers = {6};
  config.epochs = 3;
  config.batch_size = 4;
  ml::MlpClassifier original(config);
  original.EnableCheckpointing(Dir());
  original.Fit(data);

  config.seed = config.seed + 1;
  ml::MlpClassifier other(config);
  other.EnableCheckpointing(Dir());
  try {
    other.Fit(data);
    FAIL() << "foreign checkpoint accepted";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(ChaosResumeTest, BoostingAbortedRunResumesBitwiseIdentical) {
  const auto data = MakeBinaryDataset(30, 821);
  const auto probe = MakeBinaryDataset(8, 822);

  ml::GradientBoosting::Config config;
  config.num_rounds = 10;

  ml::GradientBoosting uninterrupted(config);
  uninterrupted.Fit(data);

  // Victim dies after round 4 commits (boosting rounds report to the
  // same epoch-granularity fault site as epochs).
  ml::GradientBoosting victim(config);
  victim.EnableCheckpointing(Dir());
  FaultInjector::Global().Configure("abort@epoch:4");
  try {
    victim.Fit(data);
    FAIL() << "injected abort did not fire";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kAborted);
  }
  FaultInjector::Global().Clear();

  ml::GradientBoosting survivor(config);
  survivor.EnableCheckpointing(Dir());
  survivor.Fit(data);

  EXPECT_EQ(survivor.NumRounds(), static_cast<std::size_t>(10));
  for (const auto& row : probe.features) {
    EXPECT_EQ(survivor.PredictProba(row), uninterrupted.PredictProba(row));
  }
}

TEST_F(ChaosResumeTest, BoostingSparseCommitCadenceStillResumes) {
  const auto data = MakeBinaryDataset(30, 823);
  const auto probe = MakeBinaryDataset(8, 824);

  ml::GradientBoosting::Config config;
  config.num_rounds = 10;

  ml::GradientBoosting uninterrupted(config);
  uninterrupted.Fit(data);

  // Commit every 3 rounds; the abort after round 7 leaves the round-6
  // generation on disk, so the survivor redoes rounds 7..10.
  ml::GradientBoosting victim(config);
  victim.EnableCheckpointing(Dir(), /*every_rounds=*/3);
  FaultInjector::Global().Configure("abort@epoch:7");
  EXPECT_THROW(victim.Fit(data), StatusError);
  FaultInjector::Global().Clear();

  ml::GradientBoosting survivor(config);
  survivor.EnableCheckpointing(Dir(), /*every_rounds=*/3);
  survivor.Fit(data);

  for (const auto& row : probe.features) {
    EXPECT_EQ(survivor.PredictProba(row), uninterrupted.PredictProba(row));
  }
}

TEST_F(ChaosResumeTest, LogisticRegressionDivergenceGuard) {
  ml::Dataset data;
  stats::Rng rng(75);
  for (int i = 0; i < 40; ++i) {
    const int label = i % 2;
    data.Add({rng.Gaussian(label == 1 ? 1.0 : -1.0, 1.0), rng.Gaussian()},
             label);
  }
  ml::LogisticRegression model;
  FaultInjector::Global().Configure("nan@logreg_grad:2");
  try {
    model.Fit(data);
    FAIL() << "NaN gradient not caught";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kDivergence);
  }
}

TEST_F(ChaosResumeTest, KFoldAbortedExperimentResumesBitwiseIdentical) {
  // Single-threaded so the injected abort lands at a deterministic fold
  // (results are thread-count independent either way).
  parallel::SetThreads(1);
  const auto fixture = testing::MakeSmallPoFixture(20, 911);

  std::vector<CharacterizerFactory> methods;
  methods.push_back([] { return std::make_unique<ConfCharacterizer>(); });
  methods.push_back([] { return std::make_unique<RandCharacterizer>(5); });

  ExperimentConfig config;
  config.folds = 3;
  config.bootstrap_replicates = 200;

  const auto reference = RunKFoldExperiment(fixture->input, methods, config);

  config.checkpoint_dir = Dir();
  FaultInjector::Global().Configure("abort@fold:2");
  try {
    RunKFoldExperiment(fixture->input, methods, config);
    FAIL() << "injected abort did not fire";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kAborted);
  }
  FaultInjector::Global().Clear();

  const auto resumed = RunKFoldExperiment(fixture->input, methods, config);

  ASSERT_EQ(resumed.size(), reference.size());
  for (std::size_t m = 0; m < reference.size(); ++m) {
    EXPECT_EQ(resumed[m].method, reference[m].method);
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(resumed[m].a_c[c], reference[m].a_c[c]);
      EXPECT_EQ(resumed[m].per_matcher_correct[c],
                reference[m].per_matcher_correct[c]);
    }
    EXPECT_EQ(resumed[m].a_ml, reference[m].a_ml);
    EXPECT_EQ(resumed[m].per_matcher_jaccard,
              reference[m].per_matcher_jaccard);
  }
}

TEST_F(ChaosResumeTest, KFoldStaleCheckpointsAreRecomputedNotBlended) {
  parallel::SetThreads(1);
  const auto fixture = testing::MakeSmallPoFixture(20, 912);

  std::vector<CharacterizerFactory> methods;
  methods.push_back([] { return std::make_unique<ConfCharacterizer>(); });

  ExperimentConfig config;
  config.folds = 3;
  config.bootstrap_replicates = 200;
  config.checkpoint_dir = Dir();
  RunKFoldExperiment(fixture->input, methods, config);

  // Change the experiment seed: the stored folds no longer apply. They
  // must be treated as absent (recomputed), not loaded.
  auto changed = config;
  changed.seed = config.seed + 1;
  const auto with_stale =
      RunKFoldExperiment(fixture->input, methods, changed);

  auto fresh_config = changed;
  fresh_config.checkpoint_dir.clear();
  const auto fresh =
      RunKFoldExperiment(fixture->input, methods, fresh_config);
  ASSERT_EQ(with_stale.size(), fresh.size());
  EXPECT_EQ(with_stale[0].a_ml, fresh[0].a_ml);
  EXPECT_EQ(with_stale[0].per_matcher_jaccard,
            fresh[0].per_matcher_jaccard);
}

}  // namespace
}  // namespace mexi
