#include "core/submatcher.h"

#include <gtest/gtest.h>

namespace mexi {
namespace {

matching::DecisionHistory LongHistory(std::size_t n) {
  matching::DecisionHistory h;
  for (std::size_t i = 0; i < n; ++i) {
    h.Add({i % 5, i % 3, 0.5, static_cast<double>(i) * 10.0});
  }
  return h;
}

matching::MovementMap MovementFor(const matching::DecisionHistory& h) {
  matching::MovementMap map(1280.0, 800.0);
  for (std::size_t i = 0; i < h.size(); ++i) {
    map.Add({100.0, 100.0, matching::MovementType::kMove,
             h.at(i).timestamp});
  }
  return map;
}

TEST(SubmatcherTest, NoneModeIsOneFullUnit) {
  const auto history = LongHistory(80);
  const auto movement = MovementFor(history);
  MatcherView view{&history, &movement, nullptr, 5, 3};
  const auto units = BuildSubMatchers(view, 7, SubmatcherMode::kNone);
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0].history.size(), 80u);
  EXPECT_EQ(units[0].parent, 7u);
  EXPECT_EQ(units[0].movement.size(), 80u);
}

TEST(SubmatcherTest, Fixed50IncludesFullHistoryAndWindows) {
  const auto history = LongHistory(100);
  const auto movement = MovementFor(history);
  MatcherView view{&history, &movement, nullptr, 5, 3};
  const auto units = BuildSubMatchers(view, 0, SubmatcherMode::kFixed50);
  // Unit 0: the full history; then windows of 50 at stride 25:
  // [0,50), [25,75), [50,100).
  ASSERT_GE(units.size(), 4u);
  EXPECT_EQ(units[0].history.size(), 100u);
  for (std::size_t u = 1; u < units.size(); ++u) {
    EXPECT_EQ(units[u].history.size(), 50u);
  }
}

TEST(SubmatcherTest, WindowsCoverTheTail) {
  const auto history = LongHistory(60);
  const auto movement = MovementFor(history);
  MatcherView view{&history, &movement, nullptr, 5, 3};
  const auto units = BuildSubMatchers(view, 0, SubmatcherMode::kFixed50);
  // Full + [0,50) + right-aligned [10,60).
  ASSERT_EQ(units.size(), 3u);
  EXPECT_DOUBLE_EQ(units[2].history.at(49).timestamp, 590.0);
}

TEST(SubmatcherTest, ShortHistoryYieldsOnlyFullUnit) {
  const auto history = LongHistory(30);
  const auto movement = MovementFor(history);
  MatcherView view{&history, &movement, nullptr, 5, 3};
  const auto units = BuildSubMatchers(view, 0, SubmatcherMode::kFixed50);
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0].history.size(), 30u);
}

TEST(SubmatcherTest, Multi70UsesAllWindowSizes) {
  const auto history = LongHistory(90);
  const auto movement = MovementFor(history);
  MatcherView view{&history, &movement, nullptr, 5, 3};
  const auto units = BuildSubMatchers(view, 0, SubmatcherMode::kMulti70);
  // Full + windows of 30/40/50/60/70 -> strictly more units than k50.
  const auto units50 = BuildSubMatchers(view, 0, SubmatcherMode::kFixed50);
  EXPECT_GT(units.size(), units50.size());
  bool has30 = false, has70 = false;
  for (const auto& unit : units) {
    has30 |= unit.history.size() == 30;
    has70 |= unit.history.size() == 70;
  }
  EXPECT_TRUE(has30);
  EXPECT_TRUE(has70);
}

TEST(SubmatcherTest, MovementIsSlicedToWindowSpan) {
  const auto history = LongHistory(100);
  const auto movement = MovementFor(history);
  MatcherView view{&history, &movement, nullptr, 5, 3};
  const auto units = BuildSubMatchers(view, 0, SubmatcherMode::kFixed50);
  for (const auto& unit : units) {
    if (unit.history.empty()) continue;
    const double t0 = unit.history.at(0).timestamp;
    const double t1 = unit.history.at(unit.history.size() - 1).timestamp;
    for (const auto& e : unit.movement.events()) {
      EXPECT_GE(e.timestamp, t0);
      EXPECT_LE(e.timestamp, t1);
    }
  }
}

TEST(SubmatcherTest, NullHistoryRejected) {
  MatcherView view;
  EXPECT_THROW(BuildSubMatchers(view, 0, SubmatcherMode::kNone),
               std::invalid_argument);
}

}  // namespace
}  // namespace mexi
