#!/usr/bin/env bash
# Population-sweep smoke drill (also the CI sweep-smoke job):
#
# 1. Run `mexi_cli sweep` over a population drawn from the wide mixture
#    (all archetypes) at 1 thread and at 4 threads — the aggregate JSON
#    must be byte-for-byte identical.
# 2. Re-run with MEXI_FAULTS=kill@sweep_shard:2 — the process
#    _Exit(137)s right after the second shard's checkpoint commits.
# 3. Re-run with --resume: the remaining shards are replayed and the
#    final aggregate JSON must again be byte-identical to the
#    uninterrupted run.
#
# SWEEP_POPULATION overrides the population size (CI uses 2000).
# SWEEP_ARTIFACT_DIR keeps the aggregate JSONs in that directory instead
# of a throwaway tempdir, so CI can upload them when the drill fails.
set -u

MEXI_CLI="${MEXI_CLI:?path to the mexi_cli binary (set by ctest)}"
POPULATION="${SWEEP_POPULATION:-2000}"
SHARD_SIZE=256
if [ -n "${SWEEP_ARTIFACT_DIR:-}" ]; then
  WORKDIR="${SWEEP_ARTIFACT_DIR}"
  mkdir -p "${WORKDIR}"
else
  WORKDIR="$(mktemp -d)"
  trap 'rm -rf "${WORKDIR}"' EXIT
fi

fail() { echo "sweep_smoke: FAIL: $*" >&2; exit 1; }

SWEEP=("${MEXI_CLI}" sweep --population "${POPULATION}" \
    --shard-size "${SHARD_SIZE}" --seed 5 --task po --mix wide)

# Reference: uninterrupted, 1 thread.
"${SWEEP[@]}" --out "${WORKDIR}/agg_1t.json" --threads 1 \
    > "${WORKDIR}/sweep_1t.log" || fail "1-thread sweep exited $?"
grep -q "\"matchers\":${POPULATION}," "${WORKDIR}/agg_1t.json" \
    || fail "aggregate JSON does not count the full population"
# The wide mixture must actually populate the adversarial archetypes.
grep -q '"E:adversarial-spammer":{"matchers":0,' "${WORKDIR}/agg_1t.json" \
    && fail "no spammer matchers drawn from the wide mixture"

# Thread invariance: 4 threads, byte-for-byte identical JSON.
"${SWEEP[@]}" --out "${WORKDIR}/agg_4t.json" --threads 4 \
    > /dev/null || fail "4-thread sweep exited $?"
cmp "${WORKDIR}/agg_1t.json" "${WORKDIR}/agg_4t.json" \
    || fail "aggregate JSON differs between 1 and 4 threads"

# Kill-and-resume: the injected kill fires after shard 2's checkpoint
# committed — a real mid-run death leaving durable state behind.
CKPT="${WORKDIR}/ckpt"
MEXI_FAULTS=kill@sweep_shard:2 \
    "${SWEEP[@]}" --out "${WORKDIR}/agg_killed.json" --threads 1 \
    --checkpoint-dir "${CKPT}" > "${WORKDIR}/killed.log" 2>&1
STATUS=$?
[ "${STATUS}" -eq 137 ] || fail "expected exit 137 from the kill, got ${STATUS}"
ls "${CKPT}"/sweep*.bin > /dev/null 2>&1 \
    || fail "killed sweep left no checkpoint behind"
[ ! -s "${WORKDIR}/agg_killed.json" ] \
    || fail "killed sweep wrote an aggregate JSON it should not have"

# Resume replays shards 3..N and must reproduce the reference bytes.
"${SWEEP[@]}" --out "${WORKDIR}/agg_resumed.json" --threads 1 \
    --checkpoint-dir "${CKPT}" --resume \
    > /dev/null || fail "resumed sweep exited $?"
cmp "${WORKDIR}/agg_1t.json" "${WORKDIR}/agg_resumed.json" \
    || fail "resumed aggregate JSON differs from the uninterrupted run"

echo "sweep_smoke: PASS"
