#include "matching/decision_history.h"

#include <gtest/gtest.h>

namespace mexi::matching {
namespace {

/// The paper's Table I history.
DecisionHistory PaperHistory() {
  DecisionHistory h;
  h.Add({2, 3, 1.0, 3.0});    // M34
  h.Add({0, 0, 0.9, 8.0});    // M11
  h.Add({0, 1, 0.5, 15.0});   // M12
  h.Add({0, 0, 0.5, 16.0});   // M11 revisited
  h.Add({1, 0, 0.45, 34.0});  // M21
  return h;
}

TEST(DecisionHistoryTest, AddValidation) {
  DecisionHistory h;
  h.Add({0, 0, 0.5, 1.0});
  EXPECT_THROW(h.Add({0, 0, 1.5, 2.0}), std::invalid_argument);
  EXPECT_THROW(h.Add({0, 0, 0.5, 0.5}), std::invalid_argument);  // t back
  h.Add({0, 0, 0.5, 1.0});  // equal timestamp allowed
  EXPECT_EQ(h.size(), 2u);
}

TEST(DecisionHistoryTest, EqOneProjectionLatestWins) {
  const DecisionHistory h = PaperHistory();
  const MatchMatrix m = h.ToMatrix(4, 4);
  EXPECT_DOUBLE_EQ(m.At(2, 3), 1.0);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.5);  // 0.9 overridden at t=16
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 0.45);
  EXPECT_EQ(m.MatchSize(), 4u);
}

TEST(DecisionHistoryTest, ZeroConfidenceLeavesMatch) {
  DecisionHistory h;
  h.Add({0, 0, 0.9, 1.0});
  h.Add({0, 0, 0.0, 2.0});  // retracted
  const MatchMatrix m = h.ToMatrix(2, 2);
  EXPECT_EQ(m.MatchSize(), 0u);
  EXPECT_TRUE(h.FinalPairs().empty());
}

TEST(DecisionHistoryTest, PaperExampleStats) {
  const DecisionHistory h = PaperHistory();
  // Mean confidence: (1.0+0.9+0.5+0.5+0.45)/5 = 0.67 (Section II-B2).
  EXPECT_NEAR(h.MeanConfidence(), 0.67, 1e-12);
  EXPECT_EQ(h.DistinctPairs(), 4u);
  EXPECT_EQ(h.MindChanges(), 1u);
  EXPECT_EQ(h.FinalPairs().size(), 4u);
}

TEST(DecisionHistoryTest, ElapsedTimes) {
  const DecisionHistory h = PaperHistory();
  const auto elapsed = h.ElapsedTimes();
  ASSERT_EQ(elapsed.size(), 4u);
  EXPECT_DOUBLE_EQ(elapsed[0], 5.0);
  EXPECT_DOUBLE_EQ(elapsed[3], 18.0);
  EXPECT_TRUE(DecisionHistory().ElapsedTimes().empty());
}

TEST(DecisionHistoryTest, PrefixAndWindow) {
  const DecisionHistory h = PaperHistory();
  EXPECT_EQ(h.Prefix(2).size(), 2u);
  EXPECT_EQ(h.Prefix(99).size(), 5u);
  const DecisionHistory w = h.Window(1, 3);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.at(0).timestamp, 8.0);
  EXPECT_EQ(h.Window(4, 10).size(), 1u);
  EXPECT_EQ(h.Window(10, 3).size(), 0u);
}

TEST(DecisionHistoryTest, PreprocessedRemovesWarmup) {
  const DecisionHistory h = PaperHistory();
  const DecisionHistory p = h.Preprocessed(3, 2.0);
  // First three removed; outlier pass needs >= 2 elapsed values.
  EXPECT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p.at(0).timestamp, 16.0);
}

TEST(DecisionHistoryTest, PreprocessedRemovesElapsedOutliers) {
  DecisionHistory h;
  double t = 0.0;
  for (int i = 0; i < 20; ++i) {
    t += 10.0;
    h.Add({static_cast<std::size_t>(i), 0, 0.5, t});
  }
  t += 500.0;  // a methodical pause
  h.Add({20, 0, 0.5, t});
  t += 10.0;
  h.Add({21, 0, 0.5, t});
  const DecisionHistory p = h.Preprocessed(0, 2.0);
  EXPECT_EQ(p.size(), 21u);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NE(p.at(i).source, 20u);  // the outlier decision is gone
  }
}

TEST(DecisionHistoryTest, PreprocessedOnShortHistory) {
  DecisionHistory h;
  h.Add({0, 0, 0.5, 1.0});
  const DecisionHistory p = h.Preprocessed(3, 2.0);
  EXPECT_TRUE(p.empty());
}

}  // namespace
}  // namespace mexi::matching
