#!/usr/bin/env bash
# Streaming chaos drill: JSONL prefix stability under mid-trace death.
#
# A `stream` run is killed (real _Exit(137), injected at the
# stream_emit fault site) right after its Kth emitted line. Completed
# decisions must survive the death verbatim: the killed run's stdout is
# exactly the first K complete lines of an uninterrupted run — no torn
# trailing line, no drifted values. The fault fires after fflush, so the
# contract is that every emitted line is durable the moment it appears.
set -u

MEXI_CLI="${MEXI_CLI:?path to the mexi_cli binary (set by ctest)}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "${WORKDIR}"' EXIT

fail() { echo "stream_chaos: FAIL: $*" >&2; exit 1; }

DATA="${WORKDIR}/data"
"${MEXI_CLI}" simulate --out "${DATA}" --matchers 12 --seed 47 --task po \
    > "${WORKDIR}/simulate.log" || fail "simulate exited $?"
read -r ROWS COLS < <(sed -n \
    's/^rerun with: --rows \([0-9]*\) --cols \([0-9]*\)$/\1 \2/p' \
    "${WORKDIR}/simulate.log")
[ -n "${ROWS:-}" ] && [ -n "${COLS:-}" ] || fail "could not parse task dims"

STREAM=("${MEXI_CLI}" stream --dir "${DATA}" --rows "${ROWS}" \
    --cols "${COLS}")

"${STREAM[@]}" > "${WORKDIR}/full.jsonl" || fail "uninterrupted run exited $?"
TOTAL=$(wc -l < "${WORKDIR}/full.jsonl")
[ "${TOTAL}" -gt 100 ] || fail "implausibly short stream (${TOTAL} lines)"

# Kill early (mid first matcher), mid-run, and one line before the end.
for K in 7 $((TOTAL / 2)) $((TOTAL - 1)); do
  MEXI_FAULTS="kill@stream_emit:${K}" "${STREAM[@]}" \
      > "${WORKDIR}/killed.${K}.jsonl" 2> "${WORKDIR}/killed.${K}.err"
  RC=$?
  [ "${RC}" -eq 137 ] || fail "expected exit 137 at K=${K}, got ${RC}"
  LINES=$(wc -l < "${WORKDIR}/killed.${K}.jsonl")
  [ "${LINES}" -eq "${K}" ] \
      || fail "K=${K}: ${LINES} complete lines survived the kill"
  head -n "${K}" "${WORKDIR}/full.jsonl" \
      | cmp - "${WORKDIR}/killed.${K}.jsonl" \
      || fail "K=${K}: killed prefix differs from the uninterrupted run"
done

echo "stream_chaos: PASS"
