// Round-trip locks for the trainable-artifact serialization layer.
//
// Every model type must survive SaveState -> LoadState into a freshly
// constructed instance with bitwise-identical predictions, and a second
// SaveState of the restored instance must reproduce the original bytes
// exactly — the property the crash-resume substrate depends on.

#include <vector>

#include <gtest/gtest.h>

#include "ml/decision_tree.h"
#include "ml/gradient_boosting.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "ml/nn/cnn.h"
#include "ml/nn/lstm.h"
#include "ml/random_forest.h"
#include "robust/serialize.h"
#include "robust/status.h"
#include "stats/rng.h"

namespace mexi::ml {
namespace {

Dataset MakeBlobs(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    const double cx = label == 1 ? 1.5 : -1.5;
    d.Add({rng.Gaussian(cx, 1.0), rng.Gaussian(-cx, 1.0),
           rng.Gaussian(0.0, 1.0)},
          label);
  }
  return d;
}

/// Fits `model`, round-trips it into `restored`, and checks bitwise
/// prediction equality plus byte-identical re-serialization.
void ExpectRoundTrip(BinaryClassifier& model, BinaryClassifier& restored,
                     const Dataset& train) {
  model.Fit(train);

  robust::BinaryWriter saved;
  model.SaveState(saved);
  robust::BinaryReader reader(saved.buffer());
  restored.LoadState(reader);
  EXPECT_EQ(reader.remaining(), 0u) << model.Name();

  ASSERT_TRUE(restored.fitted()) << model.Name();
  for (const auto& row : train.features) {
    // operator== on doubles: bitwise, not within-epsilon.
    EXPECT_EQ(model.PredictProba(row), restored.PredictProba(row))
        << model.Name();
  }

  robust::BinaryWriter resaved;
  restored.SaveState(resaved);
  EXPECT_EQ(saved.buffer(), resaved.buffer()) << model.Name();
}

TEST(ModelSerializationTest, LogisticRegression) {
  LogisticRegression model, restored;
  ExpectRoundTrip(model, restored, MakeBlobs(120, 51));
}

TEST(ModelSerializationTest, LinearSvm) {
  LinearSvm model, restored;
  ExpectRoundTrip(model, restored, MakeBlobs(120, 52));
}

TEST(ModelSerializationTest, DecisionTree) {
  DecisionTree model, restored;
  ExpectRoundTrip(model, restored, MakeBlobs(120, 53));
}

TEST(ModelSerializationTest, RandomForest) {
  RandomForest::Config config;
  config.num_trees = 8;
  RandomForest model(config), restored(config);
  ExpectRoundTrip(model, restored, MakeBlobs(120, 54));
}

TEST(ModelSerializationTest, GradientBoosting) {
  GradientBoosting model, restored;
  ExpectRoundTrip(model, restored, MakeBlobs(120, 55));
}

TEST(ModelSerializationTest, Mlp) {
  MlpClassifier::Config config;
  config.hidden_layers = {8, 4};
  config.epochs = 15;
  MlpClassifier model(config), restored(config);
  ExpectRoundTrip(model, restored, MakeBlobs(80, 56));
}

TEST(ModelSerializationTest, ConstantLabelFallback) {
  // A degenerate single-class fit stores no model weights, only the
  // constant label — that shortcut must round-trip too.
  Dataset d;
  for (int i = 0; i < 12; ++i) d.Add({static_cast<double>(i)}, 1);
  LogisticRegression model, restored;
  ExpectRoundTrip(model, restored, d);
  EXPECT_EQ(restored.Predict({99.0}), 1);
}

TEST(ModelSerializationTest, TypeMismatchRejected) {
  LogisticRegression source;
  source.Fit(MakeBlobs(60, 57));
  robust::BinaryWriter saved;
  source.SaveState(saved);

  LinearSvm wrong_type;
  robust::BinaryReader reader(saved.buffer());
  try {
    wrong_type.LoadState(reader);
    FAIL() << "cross-type load accepted";
  } catch (const robust::StatusError& e) {
    EXPECT_EQ(e.status().code(), robust::StatusCode::kCorruption);
  }
}

TEST(ModelSerializationTest, LstmFullTrainingState) {
  LstmSequenceModel::Config config;
  config.input_dim = 2;
  config.hidden_dim = 6;
  config.dense_dim = 8;
  config.num_labels = 3;
  config.dropout = 0.3;
  config.epochs = 2;
  config.batch_size = 4;
  config.seed = 61;

  stats::Rng rng(62);
  std::vector<Sequence> sequences;
  std::vector<std::vector<double>> targets;
  for (int i = 0; i < 6; ++i) {
    Sequence seq;
    for (std::size_t t = 0; t < 4; ++t) {
      seq.push_back({rng.Uniform(), rng.Gaussian()});
    }
    sequences.push_back(std::move(seq));
    targets.push_back({rng.Bernoulli(0.5) ? 1.0 : 0.0,
                       rng.Bernoulli(0.5) ? 1.0 : 0.0,
                       rng.Bernoulli(0.5) ? 1.0 : 0.0});
  }

  LstmSequenceModel model(config);
  model.Fit(sequences, targets);

  robust::BinaryWriter saved;
  model.SaveState(saved);
  LstmSequenceModel restored(config);
  robust::BinaryReader reader(saved.buffer());
  restored.LoadState(reader);
  EXPECT_EQ(reader.remaining(), 0u);

  for (const auto& seq : sequences) {
    EXPECT_EQ(model.Predict(seq), restored.Predict(seq));
  }
  robust::BinaryWriter resaved;
  restored.SaveState(resaved);
  EXPECT_EQ(saved.buffer(), resaved.buffer());
}

TEST(ModelSerializationTest, LstmArchitectureMismatchRejected) {
  LstmSequenceModel::Config config;
  config.input_dim = 2;
  config.hidden_dim = 6;
  config.dense_dim = 8;
  config.num_labels = 3;
  config.epochs = 1;
  config.seed = 63;

  stats::Rng rng(64);
  std::vector<Sequence> sequences{{{rng.Uniform(), rng.Uniform()},
                                   {rng.Uniform(), rng.Uniform()}}};
  std::vector<std::vector<double>> targets{{1.0, 0.0, 1.0}};
  LstmSequenceModel model(config);
  model.Fit(sequences, targets);
  robust::BinaryWriter saved;
  model.SaveState(saved);

  auto wider = config;
  wider.hidden_dim = 7;
  LstmSequenceModel mismatched(wider);
  robust::BinaryReader reader(saved.buffer());
  try {
    mismatched.LoadState(reader);
    FAIL() << "architecture mismatch accepted";
  } catch (const robust::StatusError& e) {
    EXPECT_EQ(e.status().code(), robust::StatusCode::kCorruption);
  }
}

TEST(ModelSerializationTest, CnnFullTrainingState) {
  CnnImageModel::Config config;
  config.image_rows = 8;
  config.image_cols = 8;
  config.conv1_filters = 2;
  config.conv2_filters = 3;
  config.dense_dim = 6;
  config.num_labels = 3;
  config.epochs = 2;
  config.batch_size = 2;
  config.seed = 65;

  stats::Rng rng(66);
  std::vector<Image> images;
  std::vector<std::vector<double>> targets;
  for (int i = 0; i < 4; ++i) {
    images.push_back(Matrix::RandomGaussian(8, 8, 1.0, rng));
    targets.push_back({rng.Bernoulli(0.5) ? 1.0 : 0.0,
                       rng.Bernoulli(0.5) ? 1.0 : 0.0,
                       rng.Bernoulli(0.5) ? 1.0 : 0.0});
  }

  CnnImageModel model(config);
  model.Fit(images, targets);

  robust::BinaryWriter saved;
  model.SaveState(saved);
  CnnImageModel restored(config);
  robust::BinaryReader reader(saved.buffer());
  restored.LoadState(reader);
  EXPECT_EQ(reader.remaining(), 0u);

  for (const auto& img : images) {
    EXPECT_EQ(model.Predict(img), restored.Predict(img));
  }
  robust::BinaryWriter resaved;
  restored.SaveState(resaved);
  EXPECT_EQ(saved.buffer(), resaved.buffer());
}

}  // namespace
}  // namespace mexi::ml
