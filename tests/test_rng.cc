#include "stats/rng.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "stats/descriptive.h"

namespace mexi::stats {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.NextU64() == b.NextU64();
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(9);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(rng.Uniform());
  EXPECT_NEAR(Mean(sample), 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(10);
  std::vector<double> sample;
  for (int i = 0; i < 50000; ++i) sample.push_back(rng.Gaussian());
  EXPECT_NEAR(Mean(sample), 0.0, 0.03);
  EXPECT_NEAR(StdDev(sample), 1.0, 0.03);
}

TEST(RngTest, GaussianScaled) {
  Rng rng(11);
  std::vector<double> sample;
  for (int i = 0; i < 30000; ++i) sample.push_back(rng.Gaussian(5.0, 2.0));
  EXPECT_NEAR(Mean(sample), 5.0, 0.1);
  EXPECT_NEAR(StdDev(sample), 2.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(13);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-1.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
}

TEST(RngTest, UniformIndexBounds) {
  Rng rng(14);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformIndex(17), 17u);
  }
  EXPECT_THROW(rng.UniformIndex(0), std::invalid_argument);
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(15);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_THROW(rng.UniformInt(3, 2), std::invalid_argument);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(16);
  std::vector<double> sample;
  for (int i = 0; i < 30000; ++i) sample.push_back(rng.Exponential(2.0));
  EXPECT_NEAR(Mean(sample), 0.5, 0.02);
  EXPECT_THROW(rng.Exponential(0.0), std::invalid_argument);
}

TEST(RngTest, BetaInUnitIntervalAndMean) {
  Rng rng(17);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) {
    const double b = rng.Beta(2.0, 3.0);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
    sample.push_back(b);
  }
  EXPECT_NEAR(Mean(sample), 0.4, 0.02);  // alpha / (alpha + beta)
}

TEST(RngTest, GammaMean) {
  Rng rng(18);
  std::vector<double> sample;
  for (int i = 0; i < 20000; ++i) sample.push_back(rng.Gamma(3.0, 2.0));
  EXPECT_NEAR(Mean(sample), 6.0, 0.15);  // shape * scale
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, SampleWithoutReplacementUnique) {
  Rng rng(20);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t idx : sample) EXPECT_LT(idx, 100u);
  EXPECT_THROW(rng.SampleWithoutReplacement(5, 6), std::invalid_argument);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng rng(21);
  Rng child = rng.Split();
  // Child stream differs from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += child.NextU64() == rng.NextU64();
  EXPECT_LT(equal, 4);
}

}  // namespace
}  // namespace mexi::stats
