#include "core/evaluation.h"

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "test_fixtures.h"

namespace mexi {
namespace {

ExpertLabel MakeLabel(int p, int r, int res, int cal) {
  return ExpertLabel::FromVector({p, r, res, cal});
}

TEST(AccuracyEquationsTest, PerLabelAccuracy) {
  const std::vector<ExpertLabel> truth{MakeLabel(1, 0, 1, 0),
                                       MakeLabel(0, 1, 0, 1)};
  const std::vector<ExpertLabel> pred{MakeLabel(1, 1, 1, 0),
                                      MakeLabel(0, 1, 1, 0)};
  const auto a = PerLabelAccuracy(truth, pred);
  EXPECT_DOUBLE_EQ(a[0], 1.0);  // precise: both right
  EXPECT_DOUBLE_EQ(a[1], 0.5);
  EXPECT_DOUBLE_EQ(a[2], 0.5);
  EXPECT_DOUBLE_EQ(a[3], 0.5);
  EXPECT_THROW(PerLabelAccuracy(truth, {}), std::invalid_argument);
}

TEST(AccuracyEquationsTest, MultiLabelJaccard) {
  // Row 1: truth {P,Res}, pred {P,R,Res} -> 2/3.
  // Row 2: identical -> 1. Mean = 5/6.
  const std::vector<ExpertLabel> truth{MakeLabel(1, 0, 1, 0),
                                       MakeLabel(0, 1, 0, 1)};
  const std::vector<ExpertLabel> pred{MakeLabel(1, 1, 1, 0),
                                      MakeLabel(0, 1, 0, 1)};
  EXPECT_NEAR(MultiLabelAccuracy(truth, pred), (2.0 / 3.0 + 1.0) / 2.0,
              1e-12);
}

TEST(AccuracyEquationsTest, EmptySetsAgree) {
  const std::vector<ExpertLabel> truth{MakeLabel(0, 0, 0, 0)};
  const std::vector<ExpertLabel> pred{MakeLabel(0, 0, 0, 0)};
  EXPECT_DOUBLE_EQ(MultiLabelAccuracy(truth, pred), 1.0);
}

/// A cheating method for harness tests: knows the true labels.
class OracleCharacterizer : public Characterizer {
 public:
  OracleCharacterizer(const EvaluationInput* input) : input_(input) {}
  std::string Name() const override { return "Oracle"; }
  void Fit(const std::vector<MatcherView>& train,
           const std::vector<ExpertLabel>& labels,
           const TaskContext& context) override {
    (void)train;
    (void)labels;
    (void)context;
    const auto measures = ComputeAllMeasures(*input_);
    thresholds_ = FitThresholds(measures);
  }
  ExpertLabel Characterize(const MatcherView& matcher) const override {
    const ExpertMeasures m =
        ComputeMeasures(*matcher.history, matcher.source_size,
                        matcher.target_size, *input_->reference);
    return mexi::Characterize(m, thresholds_);
  }

 private:
  const EvaluationInput* input_;
  ExpertThresholds thresholds_;
};

class EvaluationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = testing::MakeSmallPoFixture(30, 909).release();
  }
  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }
  static testing::StudyFixture* fixture_;
};

testing::StudyFixture* EvaluationTest::fixture_ = nullptr;

TEST_F(EvaluationTest, OracleDominatesRandomInKFold) {
  std::vector<CharacterizerFactory> methods;
  const EvaluationInput* input = &fixture_->input;
  methods.push_back(
      [input] { return std::make_unique<OracleCharacterizer>(input); });
  methods.push_back([] { return std::make_unique<RandCharacterizer>(3); });

  ExperimentConfig config;
  config.folds = 3;
  config.bootstrap_replicates = 300;
  auto results = RunKFoldExperiment(fixture_->input, methods, config);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].method, "Oracle");
  // The oracle uses fold-global thresholds while labels use fold-train
  // thresholds, so it is near- but not always exactly perfect.
  EXPECT_GT(results[0].a_ml, 0.9);
  EXPECT_GT(results[0].a_ml, results[1].a_ml + 0.2);
  // Every test matcher appears exactly once per method.
  EXPECT_EQ(results[0].per_matcher_jaccard.size(),
            fixture_->input.matchers.size());

  MarkSignificance(results, "Rand", config);
  EXPECT_TRUE(results[0].significant[4]);
  EXPECT_FALSE(results[1].significant[4]);  // the baseline itself
  EXPECT_THROW(MarkSignificance(results, "NoSuch", config),
               std::invalid_argument);
}

TEST_F(EvaluationTest, TransferExperimentRuns) {
  // Tiny OAEI-style test population.
  sim::StudyConfig config;
  config.num_matchers = 10;
  config.seed = 41;
  testing::StudyFixture test_fixture(sim::BuildOaeiStudy(config));

  std::vector<CharacterizerFactory> methods;
  methods.push_back([] { return std::make_unique<RandFreqCharacterizer>(9); });
  methods.push_back([] { return std::make_unique<ConfCharacterizer>(); });

  ExperimentConfig experiment_config;
  const auto results = RunTransferExperiment(
      fixture_->input, test_fixture.input, methods, experiment_config);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_EQ(r.per_matcher_jaccard.size(), 10u);
    for (double a : r.a_c) {
      EXPECT_GE(a, 0.0);
      EXPECT_LE(a, 1.0);
    }
  }
}

TEST_F(EvaluationTest, LabelsFollowTrainThresholds) {
  const auto measures = ComputeAllMeasures(fixture_->input);
  const ExpertThresholds thresholds = FitThresholds(measures);
  const auto labels = LabelsFromMeasures(measures, thresholds);
  ASSERT_EQ(labels.size(), measures.size());
  // By construction of delta_res as the 80th percentile, roughly 20% of
  // the population can pass the resolution bar (before significance).
  int above = 0;
  for (const auto& m : measures) above += m.resolution > thresholds.delta_res;
  // Ties at the threshold can only shrink the share below 20%.
  EXPECT_LE(static_cast<double>(above) /
                static_cast<double>(measures.size()),
            0.32);
}

TEST_F(EvaluationTest, ComputeAllMeasuresValidatesReference) {
  EvaluationInput broken = fixture_->input;
  broken.reference = nullptr;
  EXPECT_THROW(ComputeAllMeasures(broken), std::invalid_argument);
}

}  // namespace
}  // namespace mexi
