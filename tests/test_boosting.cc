#include "core/boosting.h"

#include <gtest/gtest.h>

namespace mexi {
namespace {

TEST(AdjustForBiasTest, ShiftsConfidencesWithoutRetracting) {
  matching::MatchMatrix m(2, 2);
  m.Set(0, 0, 0.9);
  m.Set(1, 1, 0.2);
  // Over-confident matcher: bias +0.3 -> entries come down.
  const auto down = AdjustForBias(m, 0.3);
  EXPECT_NEAR(down.At(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(down.At(1, 1), 0.01, 1e-12);  // floored, still in sigma
  EXPECT_EQ(down.MatchSize(), 2u);
  // Under-confident matcher: bias -0.3 -> entries go up (capped at 1).
  const auto up = AdjustForBias(m, -0.3);
  EXPECT_NEAR(up.At(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(up.At(1, 1), 0.5, 1e-12);
  // Zero entries stay zero.
  EXPECT_DOUBLE_EQ(up.At(0, 1), 0.0);
}

TEST(ExpertiseWeightsTest, FullExpertWeighsFiveTimesNonExpert) {
  std::vector<ExpertLabel> predictions{
      ExpertLabel::FromVector({1, 1, 1, 1}),
      ExpertLabel::FromVector({1, 0, 0, 0}),
      ExpertLabel::FromVector({0, 0, 0, 0})};
  const auto weights = ExpertiseWeights(predictions);
  EXPECT_EQ(weights, (std::vector<double>{5.0, 2.0, 1.0}));
}

matching::MatchMatrix Matrix22(double a00, double a01, double a10,
                               double a11) {
  matching::MatchMatrix m(2, 2);
  m.Set(0, 0, a00);
  m.Set(0, 1, a01);
  m.Set(1, 0, a10);
  m.Set(1, 1, a11);
  return m;
}

TEST(FuseCrowdTest, WeightedSupportPicksTopPairs) {
  // Matcher 1 (weight 3) claims the diagonal; matcher 2 (weight 1)
  // claims the anti-diagonal. Fusing to size 2 keeps the diagonal.
  const auto fused = FuseCrowd(
      {Matrix22(0.9, 0.0, 0.0, 0.8), Matrix22(0.0, 0.9, 0.9, 0.0)},
      {3.0, 1.0}, 2);
  EXPECT_GT(fused.At(0, 0), 0.0);
  EXPECT_GT(fused.At(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(fused.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(fused.At(1, 0), 0.0);
}

TEST(FuseCrowdTest, DefaultSizeIsWeightedMeanMatchSize) {
  // Matcher 1 claims 1 pair, matcher 2 claims 3; equal weights -> 2.
  const auto fused = FuseCrowd(
      {Matrix22(0.9, 0.0, 0.0, 0.0), Matrix22(0.9, 0.8, 0.7, 0.0)},
      {1.0, 1.0});
  EXPECT_EQ(fused.MatchSize(), 2u);
}

TEST(FuseCrowdTest, Validation) {
  EXPECT_THROW(FuseCrowd({}, {}), std::invalid_argument);
  EXPECT_THROW(
      FuseCrowd({Matrix22(1, 0, 0, 0)}, {1.0, 2.0}),
      std::invalid_argument);
  EXPECT_THROW(FuseCrowd({Matrix22(1, 0, 0, 0)}, {-1.0}),
               std::invalid_argument);
  matching::MatchMatrix other(3, 3);
  EXPECT_THROW(FuseCrowd({Matrix22(1, 0, 0, 0), other}, {1.0, 1.0}),
               std::invalid_argument);
}

TEST(EvaluateMatchTest, F1Harmonic) {
  const auto reference =
      matching::MatchMatrix::FromReference({{0, 0}, {1, 1}}, 2, 2);
  const auto match = Matrix22(0.9, 0.9, 0.0, 0.0);  // one right, one wrong
  const MatchQuality q = EvaluateMatch(match, reference);
  EXPECT_DOUBLE_EQ(q.precision, 0.5);
  EXPECT_DOUBLE_EQ(q.recall, 0.5);
  EXPECT_DOUBLE_EQ(q.f1, 0.5);
  const MatchQuality empty =
      EvaluateMatch(matching::MatchMatrix(2, 2), reference);
  EXPECT_DOUBLE_EQ(empty.f1, 0.0);
}

TEST(FuseCrowdTest, GoodCrowdBeatsItsWorstMember) {
  // Three matchers: two mostly right, one mostly wrong; fusion should
  // beat the bad matcher and match or beat the average.
  const auto reference =
      matching::MatchMatrix::FromReference({{0, 0}, {1, 1}}, 2, 2);
  const auto good1 = Matrix22(0.9, 0.0, 0.0, 0.8);
  const auto good2 = Matrix22(0.8, 0.2, 0.0, 0.9);
  const auto bad = Matrix22(0.0, 0.9, 0.9, 0.0);
  const auto fused = FuseCrowd({good1, good2, bad}, {1.0, 1.0, 1.0}, 2);
  const MatchQuality q = EvaluateMatch(fused, reference);
  EXPECT_DOUBLE_EQ(q.f1, 1.0);
  EXPECT_GT(q.f1, EvaluateMatch(bad, reference).f1);
}

}  // namespace
}  // namespace mexi
