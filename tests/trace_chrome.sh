#!/usr/bin/env bash
# Smoke test for tools/trace_to_chrome.py against a REAL metrics.jsonl
# (not a synthetic fixture), so schema drift between the obs emitter and
# the converter fails loudly:
#
# 1. Simulate a tiny study, run characterize with --metrics-out armed.
# 2. Convert the resulting metrics.jsonl to Chrome trace-event JSON.
# 3. The output must be valid JSON with span ("X") and metadata events,
#    microsecond timestamps, and a tid on every timeline record.
# 4. Appending garbage to the JSONL must be tolerated (crash-truncated
#    traces are exactly when you want the viewer to still work).
set -u

MEXI_CLI="${MEXI_CLI:?path to the mexi_cli binary (set by ctest)}"
CONVERTER="${CONVERTER:?path to trace_to_chrome.py (set by ctest)}"
PYTHON="${PYTHON:-python3}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "${WORKDIR}"' EXIT

fail() { echo "trace_chrome: FAIL: $*" >&2; exit 1; }

DATA="${WORKDIR}/data"
"${MEXI_CLI}" simulate --out "${DATA}" --matchers 6 --seed 13 --task po \
    > "${WORKDIR}/simulate.log" || fail "simulate exited $?"
read -r ROWS COLS < <(sed -n \
    's/^rerun with: --rows \([0-9]*\) --cols \([0-9]*\)$/\1 \2/p' \
    "${WORKDIR}/simulate.log")
[ -n "${ROWS:-}" ] && [ -n "${COLS:-}" ] || fail "could not parse task dims"

OBS="${WORKDIR}/obs"
"${MEXI_CLI}" characterize --dir "${DATA}" --rows "${ROWS}" \
    --cols "${COLS}" --folds 2 --metrics-out "${OBS}" \
    > /dev/null 2> /dev/null || fail "characterize exited $?"
[ -s "${OBS}/metrics.jsonl" ] || fail "no metrics.jsonl produced"

"${PYTHON}" "${CONVERTER}" "${OBS}/metrics.jsonl" \
    -o "${WORKDIR}/out.trace.json" 2> "${WORKDIR}/convert.log" \
    || fail "converter exited $? ($(cat "${WORKDIR}/convert.log"))"

"${PYTHON}" - "${WORKDIR}/out.trace.json" <<'EOF' || fail "bad trace JSON"
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
spans = [e for e in events if e["ph"] == "X"]
meta = [e for e in events if e["ph"] == "M"]
assert spans, "no complete (span) events"
assert meta, "no metadata events"
assert any(e["args"].get("name") == "mexi" for e in meta), "no process_name"
for e in spans:
    assert e["dur"] >= 0 and e["ts"] >= 0, e
    assert isinstance(e["tid"], int), e
EOF

# Crash-truncated / corrupted tails must not break conversion.
cp "${OBS}/metrics.jsonl" "${WORKDIR}/torn.jsonl"
printf '{"type": "span", "seq": 99999, "na\nnot json at all\n' \
    >> "${WORKDIR}/torn.jsonl"
"${PYTHON}" "${CONVERTER}" "${WORKDIR}/torn.jsonl" \
    -o "${WORKDIR}/torn.trace.json" 2> "${WORKDIR}/torn.log" \
    || fail "converter choked on a torn JSONL"
grep -q "malformed" "${WORKDIR}/torn.log" \
    || fail "torn lines were not reported"

echo "trace_chrome: PASS"
