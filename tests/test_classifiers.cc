#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "ml/decision_tree.h"
#include "ml/gradient_boosting.h"
#include "ml/knn.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"
#include "ml/feature_importance.h"
#include "ml/metrics.h"
#include "ml/model_selection.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"
#include "stats/rng.h"

namespace mexi::ml {
namespace {

/// Two Gaussian blobs, linearly separable with margin.
Dataset MakeBlobs(std::size_t n, double separation, std::uint64_t seed) {
  stats::Rng rng(seed);
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    const double cx = label == 1 ? separation : -separation;
    d.Add({rng.Gaussian(cx, 1.0), rng.Gaussian(-cx, 1.0),
           rng.Gaussian(0.0, 1.0)},
          label);
  }
  return d;
}

/// XOR-style data no linear model can fit, but trees/boosting can.
Dataset MakeXor(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.Uniform(-1.0, 1.0);
    const double y = rng.Uniform(-1.0, 1.0);
    d.Add({x, y}, (x > 0.0) != (y > 0.0) ? 1 : 0);
  }
  return d;
}

double HoldoutAccuracy(BinaryClassifier& model, const Dataset& train,
                       const Dataset& test) {
  model.Fit(train);
  return Accuracy(test.labels, model.PredictAll(test.features));
}

class ZooTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<BinaryClassifier> Make() const {
    auto zoo = DefaultModelZoo();
    return zoo[static_cast<std::size_t>(GetParam())]->Clone();
  }
};

TEST_P(ZooTest, LearnsSeparableBlobs) {
  auto model = Make();
  const Dataset train = MakeBlobs(200, 2.0, 11);
  const Dataset test = MakeBlobs(100, 2.0, 12);
  EXPECT_GT(HoldoutAccuracy(*model, train, test), 0.85) << model->Name();
}

TEST_P(ZooTest, ProbabilitiesInUnitInterval) {
  auto model = Make();
  const Dataset train = MakeBlobs(100, 1.0, 13);
  model->Fit(train);
  for (const auto& row : train.features) {
    const double p = model->PredictProba(row);
    EXPECT_GE(p, 0.0) << model->Name();
    EXPECT_LE(p, 1.0) << model->Name();
  }
}

TEST_P(ZooTest, DegenerateSingleClassCollapses) {
  auto model = Make();
  Dataset d;
  for (int i = 0; i < 10; ++i) d.Add({static_cast<double>(i)}, 1);
  model->Fit(d);
  EXPECT_EQ(model->Predict({100.0}), 1) << model->Name();
  EXPECT_DOUBLE_EQ(model->PredictProba({-100.0}), 1.0) << model->Name();
}

TEST_P(ZooTest, RejectsEmptyDataset) {
  auto model = Make();
  EXPECT_THROW(model->Fit(Dataset()), std::invalid_argument);
  EXPECT_THROW(model->PredictProba({1.0}), std::logic_error);
}

TEST_P(ZooTest, CloneIsUntrained) {
  auto model = Make();
  model->Fit(MakeBlobs(50, 2.0, 14));
  auto clone = model->Clone();
  EXPECT_FALSE(clone->fitted());
  EXPECT_EQ(clone->Name(), model->Name());
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooTest, ::testing::Range(0, 7),
                         [](const auto& info) {
                           return DefaultModelZoo()[static_cast<std::size_t>(
                                                        info.param)]
                               ->Name();
                         });

TEST(DecisionTreeTest, LearnsXor) {
  DecisionTree tree;
  const Dataset train = MakeXor(400, 21);
  const Dataset test = MakeXor(200, 22);
  EXPECT_GT(HoldoutAccuracy(tree, train, test), 0.9);
  EXPECT_GT(tree.NodeCount(), 3u);
  EXPECT_LE(tree.Depth(), 8);
}

TEST(DecisionTreeTest, DepthZeroIsPrior) {
  DecisionTree::Config config;
  config.max_depth = 0;
  DecisionTree tree(config);
  Dataset d;
  d.Add({0.0}, 1);
  d.Add({1.0}, 0);
  d.Add({2.0}, 1);
  tree.Fit(d);
  EXPECT_EQ(tree.NodeCount(), 1u);
  EXPECT_NEAR(tree.PredictProba({0.0}), 2.0 / 3.0, 1e-12);
}

TEST(RandomForestTest, LearnsXorAndAveragesTrees) {
  RandomForest::Config config;
  config.num_trees = 30;
  RandomForest forest(config);
  const Dataset train = MakeXor(400, 23);
  const Dataset test = MakeXor(200, 24);
  EXPECT_GT(HoldoutAccuracy(forest, train, test), 0.9);
  EXPECT_EQ(forest.NumTrees(), 30u);
}

TEST(GradientBoostingTest, LearnsXor) {
  GradientBoosting gbm;
  const Dataset train = MakeXor(400, 25);
  const Dataset test = MakeXor(200, 26);
  EXPECT_GT(HoldoutAccuracy(gbm, train, test), 0.9);
}

TEST(LogisticRegressionTest, RecoversSeparatingDirection) {
  LogisticRegression lr;
  lr.Fit(MakeBlobs(400, 2.0, 27));
  // Feature 0 votes positive, feature 1 negative, feature 2 is noise.
  EXPECT_GT(lr.weights()[0], 0.5);
  EXPECT_LT(lr.weights()[1], -0.5);
  EXPECT_LT(std::abs(lr.weights()[2]), 0.4);
}

TEST(LinearSvmTest, MarginSignMatchesClass) {
  LinearSvm svm;
  const Dataset train = MakeBlobs(300, 2.5, 28);
  svm.Fit(train);
  int correct = 0;
  for (std::size_t i = 0; i < train.NumExamples(); ++i) {
    const double margin = svm.Margin(train.features[i]);
    correct += (margin > 0.0) == (train.labels[i] == 1);
  }
  EXPECT_GT(correct, 270);
}

TEST(ModelSelectionTest, PicksAModelAndRefits) {
  auto zoo = DefaultModelZoo();
  const Dataset train = MakeBlobs(120, 2.0, 29);
  stats::Rng rng(30);
  SelectionReport report;
  auto model = SelectAndTrain(zoo, train, 3, rng, &report);
  EXPECT_TRUE(model->fitted());
  EXPECT_EQ(report.cv_scores.size(), zoo.size());
  EXPECT_FALSE(report.selected_name.empty());
  // The selected model should do well on data it was selected for.
  const Dataset test = MakeBlobs(100, 2.0, 31);
  EXPECT_GT(Accuracy(test.labels, model->PredictAll(test.features)), 0.8);
}

TEST(ModelSelectionTest, CrossValidationNeedsRows) {
  auto zoo = DefaultModelZoo();
  Dataset tiny;
  tiny.Add({0.0}, 0);
  stats::Rng rng(32);
  EXPECT_THROW(CrossValidatedAccuracy(*zoo[0], tiny, 3, rng),
               std::invalid_argument);
}

TEST(FeatureImportanceTest, FindsTheInformativeFeature) {
  // Label depends only on feature 1.
  stats::Rng data_rng(33);
  Dataset d;
  for (int i = 0; i < 300; ++i) {
    const double informative = data_rng.Gaussian();
    d.Add({data_rng.Gaussian(), informative, data_rng.Gaussian()},
          informative > 0.0 ? 1 : 0);
  }
  RandomForest model;
  model.Fit(d);
  stats::Rng rng(34);
  const auto ranked = PermutationImportance(
      model, d, {"noise_a", "signal", "noise_b"}, 5, rng);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].name, "signal");
  EXPECT_GT(ranked[0].importance, 0.2);
}

}  // namespace
}  // namespace mexi::ml
