#include <gtest/gtest.h>

#include "matching/similarity.h"
#include "sim/matcher_sim.h"
#include "sim/profile.h"
#include "sim/study.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"

namespace mexi::sim {
namespace {

/// Shared small study fixture (built once; simulation is deterministic).
class StudyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StudyConfig config;
    config.num_matchers = 40;
    config.seed = 12345;
    study_ = new Study(BuildPurchaseOrderStudy(config));
  }
  static void TearDownTestSuite() {
    delete study_;
    study_ = nullptr;
  }
  static Study* study_;
};

Study* StudyTest::study_ = nullptr;

TEST(ProfileTest, SamplePopulationRespectsCount) {
  stats::Rng rng(1);
  const auto profiles = SamplePopulation(25, PopulationMix{}, rng);
  EXPECT_EQ(profiles.size(), 25u);
  EXPECT_THROW(
      SamplePopulation(5, PopulationMix{0.0, 0.0, 0.0, 0.0, 0.0}, rng),
      std::invalid_argument);
}

TEST(ProfileTest, ArchetypesHaveDistinctSkill) {
  stats::Rng rng(2);
  double a_noise = 0.0, b_noise = 0.0, a_cov = 0.0, c_cov = 0.0;
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    a_noise += SampleProfile(Archetype::kExpertA, rng).perception_noise;
    b_noise += SampleProfile(Archetype::kSloppyB, rng).perception_noise;
    a_cov += SampleProfile(Archetype::kExpertA, rng).coverage;
    c_cov += SampleProfile(Archetype::kNarrowC, rng).coverage;
  }
  EXPECT_LT(a_noise / n, b_noise / n);  // A perceives better than B
  EXPECT_GT(a_cov / n, c_cov / n);      // A covers more than C
}

TEST(ProfileTest, ArchetypeNames) {
  EXPECT_FALSE(ArchetypeName(Archetype::kExpertA).empty());
  EXPECT_NE(ArchetypeName(Archetype::kExpertA),
            ArchetypeName(Archetype::kSloppyB));
}

TEST(SimulateMatcherTest, ProducesValidTraces) {
  const auto pair = schema::GeneratePurchaseOrderTask(3);
  const auto similarity =
      matching::BuildSimilarityMatrix(pair.source, pair.target);
  const auto reference = matching::MatchMatrix::FromReference(
      pair.reference, pair.source.size(), pair.target.size());
  SimulationTask task;
  task.pair = &pair;
  task.similarity = &similarity;
  task.reference = &reference;

  stats::Rng rng(4);
  const MatcherProfile profile = SampleProfile(Archetype::kExpertA, rng);
  const SimulatedTrace trace = SimulateMatcher(task, profile, rng);

  EXPECT_FALSE(trace.history.empty());
  EXPECT_FALSE(trace.movement.empty());
  double prev_t = -1.0;
  for (std::size_t i = 0; i < trace.history.size(); ++i) {
    const auto& d = trace.history.at(i);
    EXPECT_LT(d.source, pair.source.size());
    EXPECT_LT(d.target, pair.target.size());
    EXPECT_GE(d.confidence, 0.0);
    EXPECT_LE(d.confidence, 1.0);
    EXPECT_GE(d.timestamp, prev_t);
    prev_t = d.timestamp;
  }
}

TEST(SimulateMatcherTest, RejectsIncompleteTask) {
  SimulationTask task;
  stats::Rng rng(5);
  EXPECT_THROW(SimulateMatcher(task, MatcherProfile{}, rng),
               std::invalid_argument);
}

TEST(SimulateMatcherTest, ExpertsOutmatchSloppyMatchers) {
  const auto pair = schema::GeneratePurchaseOrderTask(6);
  const auto similarity =
      matching::BuildSimilarityMatrix(pair.source, pair.target);
  const auto reference = matching::MatchMatrix::FromReference(
      pair.reference, pair.source.size(), pair.target.size());
  SimulationTask task;
  task.pair = &pair;
  task.similarity = &similarity;
  task.reference = &reference;

  stats::Rng rng(7);
  double expert_p = 0.0, sloppy_p = 0.0, expert_r = 0.0, sloppy_r = 0.0;
  const int n = 12;
  for (int i = 0; i < n; ++i) {
    const auto a = SimulateMatcher(
        task, SampleProfile(Archetype::kExpertA, rng), rng);
    const auto b = SimulateMatcher(
        task, SampleProfile(Archetype::kSloppyB, rng), rng);
    const auto ma =
        a.history.ToMatrix(pair.source.size(), pair.target.size());
    const auto mb =
        b.history.ToMatrix(pair.source.size(), pair.target.size());
    expert_p += ma.PrecisionAgainst(reference);
    sloppy_p += mb.PrecisionAgainst(reference);
    expert_r += ma.RecallAgainst(reference);
    sloppy_r += mb.RecallAgainst(reference);
  }
  EXPECT_GT(expert_p / n, sloppy_p / n + 0.12);
  EXPECT_GT(expert_r / n, sloppy_r / n + 0.15);
}

TEST(SimulateMatcherTest, LowMetadataAttentionStarvesSourceRegion) {
  const auto pair = schema::GeneratePurchaseOrderTask(8);
  const auto similarity =
      matching::BuildSimilarityMatrix(pair.source, pair.target);
  const auto reference = matching::MatchMatrix::FromReference(
      pair.reference, pair.source.size(), pair.target.size());
  SimulationTask task;
  task.pair = &pair;
  task.similarity = &similarity;
  task.reference = &reference;

  stats::Rng rng(9);
  MatcherProfile attentive = SampleProfile(Archetype::kExpertA, rng);
  attentive.metadata_attention = 0.95;
  // Disable revisit behavior so the share comparison isolates attention
  // (review passes spray extra match-table events).
  attentive.mind_change_rate = 0.0;
  attentive.review_pass_rate = 0.0;
  MatcherProfile inattentive = attentive;
  inattentive.metadata_attention = 0.05;

  auto source_share = [&](const SimulatedTrace& trace) {
    double in_region = 0.0;
    for (const auto& e : trace.movement.events()) {
      if (e.x < 600.0 && e.y < 340.0) in_region += 1.0;
    }
    return in_region / static_cast<double>(trace.movement.size());
  };
  const double share_attentive =
      source_share(SimulateMatcher(task, attentive, rng));
  const double share_inattentive =
      source_share(SimulateMatcher(task, inattentive, rng));
  EXPECT_GT(share_attentive, share_inattentive + 0.1)
      << "Matcher-B-style metadata neglect must show in the heat map";
}

TEST_F(StudyTest, StudyShapeAndPreprocessing) {
  ASSERT_EQ(study_->matchers.size(), 40u);
  EXPECT_GT(study_->reference.MatchSize(), 20u);
  EXPECT_GT(study_->TotalDecisions(), 500u);
  for (const auto& m : study_->matchers) {
    EXPECT_LE(m.history.size(), m.raw_history.size());
    EXPECT_FALSE(m.warmup_history.empty());
    EXPECT_FALSE(m.movement.empty());
  }
}

TEST_F(StudyTest, PersonalInfoWithinRanges) {
  for (const auto& m : study_->matchers) {
    EXPECT_GE(m.personal.psychometric_score, 500);
    EXPECT_LE(m.personal.psychometric_score, 800);
    EXPECT_GE(m.personal.english_level, 1);
    EXPECT_LE(m.personal.english_level, 5);
    EXPECT_GE(m.personal.domain_knowledge, 1);
    EXPECT_LE(m.personal.domain_knowledge, 5);
    EXPECT_GE(m.personal.age, 18);
  }
}

TEST_F(StudyTest, PsychometricScoreCorrelatesWithPrecision) {
  // Section IV-C: psychometric score ~ precision, English ~ recall.
  std::vector<double> scores, precisions, english, recalls;
  for (const auto& m : study_->matchers) {
    const auto matrix = m.history.ToMatrix(study_->task.source.size(),
                                           study_->task.target.size());
    scores.push_back(m.personal.psychometric_score);
    english.push_back(m.personal.english_level);
    precisions.push_back(matrix.PrecisionAgainst(study_->reference));
    recalls.push_back(matrix.RecallAgainst(study_->reference));
  }
  EXPECT_GT(stats::PearsonCorrelation(scores, precisions), 0.2);
  EXPECT_GT(stats::PearsonCorrelation(english, recalls), 0.2);
}

TEST_F(StudyTest, DeterministicForSeed) {
  StudyConfig config;
  config.num_matchers = 40;
  config.seed = 12345;
  const Study again = BuildPurchaseOrderStudy(config);
  ASSERT_EQ(again.matchers.size(), study_->matchers.size());
  for (std::size_t i = 0; i < again.matchers.size(); ++i) {
    ASSERT_EQ(again.matchers[i].history.size(),
              study_->matchers[i].history.size());
    for (std::size_t k = 0; k < again.matchers[i].history.size(); ++k) {
      EXPECT_DOUBLE_EQ(again.matchers[i].history.at(k).confidence,
                       study_->matchers[i].history.at(k).confidence);
    }
  }
}

TEST(StudyBuilderTest, OaeiStudyUsesOntologySizes) {
  StudyConfig config;
  config.num_matchers = 8;
  config.seed = 77;
  const Study study = BuildOaeiStudy(config);
  EXPECT_EQ(study.task.source.size(), 121u);
  EXPECT_EQ(study.task.target.size(), 109u);
  EXPECT_EQ(study.matchers.size(), 8u);
}

}  // namespace
}  // namespace mexi::sim
