// Observability substrate tests: registry semantics, span nesting,
// sink schemas, thread-safety under oversubscription, and the headline
// contract — metrics-on model outputs are bitwise identical to
// metrics-off outputs.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ml/gradient_boosting.h"
#include "ml/mlp.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/sinks.h"
#include "obs/status_file.h"
#include "obs/trace.h"
#include "stats/rng.h"

namespace mexi {
namespace {

namespace fs = std::filesystem;

// Every obs test restores the disabled state on exit so instrumented
// code in unrelated tests keeps paying only the relaxed-load guard.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Observability::Global().DisableMetrics();
    dir_ = fs::path(::testing::TempDir()) /
           ("mexi_obs_" + std::string(::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override {
    obs::Observability::Global().ClearStatusFile();
    obs::Observability::Global().DisableMetrics();
    fs::remove_all(dir_);
  }

  std::string Dir() const { return dir_.string(); }

  static std::string ReadFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  static std::vector<std::string> ReadLines(const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in) << path;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }

  fs::path dir_;
};

TEST_F(ObsTest, CounterGaugeSemantics) {
  obs::MetricsRegistry registry;
  auto& counter = registry.GetCounter("c");
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  // Same name resolves to the same instance.
  EXPECT_EQ(&registry.GetCounter("c"), &counter);

  auto& gauge = registry.GetGauge("g");
  gauge.Set(2.5);
  gauge.Set(-7.25);
  EXPECT_EQ(gauge.Value(), -7.25);
}

TEST_F(ObsTest, EmaTimerFollowsDefinition) {
  obs::MetricsRegistry registry;
  auto& timer = registry.GetTimer("t");
  timer.Observe(0.1);
  EXPECT_EQ(timer.Count(), 1u);
  // First observation seeds the EMA.
  EXPECT_NEAR(timer.EmaSeconds(), 0.1, 1e-9);
  timer.Observe(0.2);
  EXPECT_EQ(timer.Count(), 2u);
  EXPECT_NEAR(timer.TotalSeconds(), 0.3, 1e-6);
  const double expected =
      obs::EmaTimer::kAlpha * 0.2 + (1.0 - obs::EmaTimer::kAlpha) * 0.1;
  EXPECT_NEAR(timer.EmaSeconds(), expected, 1e-9);
}

TEST_F(ObsTest, HistogramBucketsAndFirstBoundsWin) {
  obs::MetricsRegistry registry;
  auto& histogram = registry.GetHistogram("h", {1.0, 2.0, 4.0});
  histogram.Observe(0.5);   // bucket 0
  histogram.Observe(2.0);   // bucket 1 (bounds are inclusive)
  histogram.Observe(3.0);   // bucket 2
  histogram.Observe(100.0); // overflow
  const auto counts = histogram.Counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(histogram.TotalCount(), 4u);

  // Re-registration under the same name keeps the original bounds.
  auto& again = registry.GetHistogram("h", {99.0});
  EXPECT_EQ(&again, &histogram);
  EXPECT_EQ(again.Bounds(), (std::vector<double>{1.0, 2.0, 4.0}));
}

TEST_F(ObsTest, SnapshotIsNameSorted) {
  obs::MetricsRegistry registry;
  registry.GetCounter("zeta").Add(1);
  registry.GetCounter("alpha").Add(2);
  registry.GetCounter("mid").Add(3);
  const auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].name, "alpha");
  EXPECT_EQ(snapshot.counters[1].name, "mid");
  EXPECT_EQ(snapshot.counters[2].name, "zeta");
}

TEST_F(ObsTest, SpansLinkParentChildPerThread) {
  auto& hub = obs::Observability::Global();
  hub.EnableMetrics("");  // in-memory only

  {
    const obs::Span outer("outer");
    ASSERT_TRUE(outer.active());
    EXPECT_EQ(outer.depth(), 0);
    EXPECT_EQ(outer.parent_id(), 0u);
    EXPECT_EQ(obs::Span::Current(), &outer);
    {
      const obs::Span inner("inner");
      EXPECT_EQ(inner.depth(), 1);
      EXPECT_EQ(inner.parent_id(), outer.id());
      EXPECT_EQ(obs::Span::Current(), &inner);

      // A sibling thread starts its own root; the parent link never
      // crosses threads.
      std::thread([&] {
        const obs::Span other_root("other");
        EXPECT_EQ(other_root.depth(), 0);
        EXPECT_EQ(other_root.parent_id(), 0u);
      }).join();
    }
    EXPECT_EQ(obs::Span::Current(), &outer);
  }
  EXPECT_EQ(obs::Span::Current(), nullptr);

  // Records land in close order: the joined thread's root first, then
  // inner, then outer.
  const auto spans = hub.BufferedSpans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "other");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[2].name, "outer");
  EXPECT_EQ(spans[1].parent_id, spans[2].id);
  EXPECT_NE(spans[0].thread_hash, spans[2].thread_hash);
  // Each span also feeds the span.<name> timer.
  EXPECT_EQ(hub.registry().GetTimer("span.outer").Count(), 1u);
}

TEST_F(ObsTest, DisabledSpansAndEventsRecordNothing) {
  auto& hub = obs::Observability::Global();
  ASSERT_FALSE(obs::MetricsEnabled());
  {
    const obs::Span span("ghost");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(obs::Span::Current(), nullptr);
  }
  hub.Event("ghost.event", {obs::F("x", 1)});
  EXPECT_TRUE(hub.BufferedSpans().empty());
  EXPECT_TRUE(hub.BufferedLines().empty());
}

TEST_F(ObsTest, JsonlAndManifestSchema) {
  auto& hub = obs::Observability::Global();
  hub.EnableMetrics(Dir());
  hub.SetManifest({obs::F("seed", 42), obs::F("subcommand", "test")});
  hub.registry().GetCounter("unit.count").Add(3);
  hub.registry().GetGauge("unit.gauge").Set(1.5);
  hub.registry().GetHistogram("unit.hist", {1.0, 2.0}).Observe(1.5);
  { const obs::Span span("unit.span"); }
  hub.Event("unit.event", {obs::F("k", "v"), obs::F("n", 7)});
  hub.Shutdown();

  const auto lines = ReadLines(Dir() + "/metrics.jsonl");
  ASSERT_GE(lines.size(), 6u);
  // Structural sanity: one complete JSON object per line, with a type.
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"type\": "), std::string::npos) << line;
  }
  EXPECT_NE(lines[0].find("\"type\": \"meta\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"schema_version\": 1"), std::string::npos);

  auto contains = [&](const std::string& needle) {
    for (const auto& line : lines) {
      if (line.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains("\"type\": \"span\", "));
  EXPECT_TRUE(contains("\"name\": \"unit.span\""));
  EXPECT_TRUE(contains("\"type\": \"event\""));
  EXPECT_TRUE(contains(
      "\"name\": \"unit.event\", \"fields\": {\"k\": \"v\", \"n\": 7}"));
  // Shutdown appends the final snapshot of every metric.
  EXPECT_TRUE(contains(
      "\"type\": \"counter\", "));
  EXPECT_TRUE(contains("\"name\": \"unit.count\", \"value\": 3"));
  EXPECT_TRUE(contains("\"type\": \"gauge\", "));
  EXPECT_TRUE(contains("\"type\": \"timer\", "));
  EXPECT_TRUE(contains(
      "\"name\": \"unit.hist\", \"bounds\": [1, 2], \"counts\": [0, 1, 0]"));
  // Sequence numbers are consecutive from 0.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("\"seq\": " + std::to_string(i)),
              std::string::npos)
        << lines[i];
  }

  const std::string manifest = ReadFile(Dir() + "/run_manifest.json");
  for (const char* key :
       {"\"schema_version\": 1", "\"build\": ", "\"simd\": ",
        "\"git_describe\": ", "\"threads_env\": ", "\"faults\": ",
        "\"started_unix_ms\": ", "\"seed\": 42",
        "\"subcommand\": \"test\""}) {
    EXPECT_NE(manifest.find(key), std::string::npos) << key;
  }
}

TEST_F(ObsTest, StatusFilePartialUpdatesMerge) {
  const std::string path = (dir_ / "status.json").string();
  fs::create_directories(dir_);
  obs::StatusFile status(path);
  obs::StatusUpdate phase;
  phase.phase = "train";
  phase.done = 1;
  phase.total = 4;
  status.Update(phase);

  obs::StatusUpdate epoch_only;
  epoch_only.epoch = 2;
  epoch_only.total_epochs = 10;
  status.Update(epoch_only);

  const std::string body = ReadFile(path);
  EXPECT_NE(body.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(body.find("\"phase\": \"train\""), std::string::npos);
  // The phase's progress survived the epoch-only update.
  EXPECT_NE(body.find("\"done\": 1"), std::string::npos);
  EXPECT_NE(body.find("\"total\": 4"), std::string::npos);
  EXPECT_NE(body.find("\"epoch\": 2"), std::string::npos);
  EXPECT_NE(body.find("\"total_epochs\": 10"), std::string::npos);
  EXPECT_NE(body.find("\"eta_seconds\": "), std::string::npos);

  // A phase change resets the progress counters to unknown.
  obs::StatusUpdate next_phase;
  next_phase.phase = "eval";
  status.Update(next_phase);
  const std::string after = ReadFile(path);
  EXPECT_NE(after.find("\"phase\": \"eval\""), std::string::npos);
  EXPECT_NE(after.find("\"done\": -1"), std::string::npos);
}

TEST_F(ObsTest, ThreadSafeUnderOversubscription) {
  auto& hub = obs::Observability::Global();
  hub.EnableMetrics("");  // in-memory: no IO in the hammer loop

  // Far more threads than this container has cores — the point is
  // contention, and TSan (CI) turns any race into a hard failure.
  constexpr int kThreads = 16;
  constexpr int kIters = 400;
  auto& counter = hub.registry().GetCounter("storm.count");
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&hub, &counter, t] {
      for (int i = 0; i < kIters; ++i) {
        counter.Add();
        hub.registry().GetGauge("storm.gauge").Set(static_cast<double>(i));
        hub.registry().GetTimer("storm.timer").Observe(1e-6);
        hub.registry()
            .GetHistogram("storm.hist", {1.0, 10.0})
            .Observe(static_cast<double>(i % 20));
        if (i % 100 == 0) {
          const obs::Span span("storm.span");
          hub.Event("storm.event", {obs::F("thread", t), obs::F("i", i)});
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  EXPECT_EQ(counter.Value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(hub.registry().GetTimer("storm.timer").Count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(hub.registry()
                .GetHistogram("storm.hist", {1.0, 10.0})
                .TotalCount(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  const auto snapshot = hub.registry().Snapshot();
  EXPECT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.timers.size(), 2u);  // storm.timer + span.storm.span
}

ml::Dataset MakeBinaryDataset(int rows, std::uint64_t seed) {
  ml::Dataset data;
  stats::Rng rng(seed);
  for (int i = 0; i < rows; ++i) {
    const int label = i % 2;
    data.Add({rng.Gaussian(label == 1 ? 0.8 : -0.8, 1.0), rng.Gaussian(),
              rng.Uniform()},
             label);
  }
  return data;
}

// The headline guarantee: turning metrics on changes no model output
// bit. Train identical models with metrics off and on (with spans,
// counters, and grad-norm gauges all firing) and compare predictions
// with operator==, not a tolerance.
TEST_F(ObsTest, MetricsOnTrainingIsBitwiseIdenticalToOff) {
  const auto data = MakeBinaryDataset(24, 501);
  const auto probe = MakeBinaryDataset(8, 502);

  ml::MlpClassifier::Config mlp_config;
  mlp_config.hidden_layers = {6};
  mlp_config.epochs = 6;
  mlp_config.batch_size = 4;

  ml::GradientBoosting::Config gb_config;
  gb_config.num_rounds = 12;

  ASSERT_FALSE(obs::MetricsEnabled());
  ml::MlpClassifier mlp_off(mlp_config);
  mlp_off.Fit(data);
  ml::GradientBoosting gb_off(gb_config);
  gb_off.Fit(data);

  obs::Observability::Global().EnableMetrics("");
  ml::MlpClassifier mlp_on(mlp_config);
  mlp_on.Fit(data);
  ml::GradientBoosting gb_on(gb_config);
  gb_on.Fit(data);
  obs::Observability::Global().DisableMetrics();

  for (const auto& row : probe.features) {
    EXPECT_EQ(mlp_on.PredictProba(row), mlp_off.PredictProba(row));
    EXPECT_EQ(gb_on.PredictProba(row), gb_off.PredictProba(row));
  }
}

// Coarse overhead guard: epoch-granularity instrumentation must be
// invisible at unit-test noise levels. The strict <2% contract is
// enforced by the benchmark gate (BM_MexiTrain vs BENCH_perf*.json);
// this smoke test only catches catastrophic regressions (per-sample
// instrumentation sneaking in) with a bound loose enough to never
// flake on a loaded CI box.
TEST_F(ObsTest, MetricsOverheadSmoke) {
  const auto data = MakeBinaryDataset(60, 601);
  ml::MlpClassifier::Config config;
  config.hidden_layers = {8};
  config.epochs = 30;
  config.batch_size = 8;

  auto time_fit = [&] {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      ml::MlpClassifier model(config);
      const auto start = std::chrono::steady_clock::now();
      model.Fit(data);
      const double seconds = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();
      best = std::min(best, seconds);
    }
    return best;
  };

  ASSERT_FALSE(obs::MetricsEnabled());
  const double off_seconds = time_fit();
  obs::Observability::Global().EnableMetrics("");
  const double on_seconds = time_fit();
  obs::Observability::Global().DisableMetrics();

  EXPECT_LT(on_seconds, off_seconds * 2.0 + 0.01)
      << "metrics-on fit took " << on_seconds << "s vs " << off_seconds
      << "s off — per-sample instrumentation crept in?";
}

}  // namespace
}  // namespace mexi
