// Property-style invariant sweeps over randomized inputs: each TEST_P
// case draws a fresh deterministic scenario and asserts invariants that
// must hold for *any* input, complementing the example-based unit tests.

#include <cmath>

#include <gtest/gtest.h>

#include "core/boosting.h"
#include "core/expert_model.h"
#include "matching/decision_history.h"
#include "matching/predictors.h"
#include "stats/rng.h"

namespace mexi {
namespace {

/// A random but valid decision history over an n x m space.
matching::DecisionHistory RandomHistory(std::size_t n, std::size_t m,
                                        std::size_t decisions,
                                        stats::Rng& rng) {
  matching::DecisionHistory history;
  double t = 0.0;
  for (std::size_t k = 0; k < decisions; ++k) {
    t += rng.Uniform(0.5, 30.0);
    history.Add({rng.UniformIndex(n), rng.UniformIndex(m),
                 rng.Uniform(0.0, 1.0), t});
  }
  return history;
}

matching::MatchMatrix RandomReference(std::size_t n, std::size_t m,
                                      std::size_t pairs, stats::Rng& rng) {
  matching::MatchMatrix reference(n, m);
  for (std::size_t k = 0; k < pairs; ++k) {
    reference.Set(rng.UniformIndex(n), rng.UniformIndex(m), 1.0);
  }
  return reference;
}

class RandomScenarioTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomScenarioTest, ProjectionIsIdempotent) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 1);
  const auto history = RandomHistory(12, 9, 40, rng);
  const auto matrix = history.ToMatrix(12, 9);
  // Re-projecting the matrix entries as a history reproduces the matrix.
  matching::DecisionHistory replay;
  double t = 0.0;
  for (const auto& [i, j] : matrix.Match()) {
    replay.Add({i, j, matrix.At(i, j), t});
    t += 1.0;
  }
  EXPECT_TRUE(replay.ToMatrix(12, 9).values().AlmostEquals(
      matrix.values(), 1e-12));
}

TEST_P(RandomScenarioTest, MeasuresWithinBounds) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 2);
  const auto history = RandomHistory(10, 8, 35, rng);
  const auto reference = RandomReference(10, 8, 12, rng);
  const ExpertMeasures m = ComputeMeasures(history, 10, 8, reference);
  EXPECT_GE(m.precision, 0.0);
  EXPECT_LE(m.precision, 1.0);
  EXPECT_GE(m.recall, 0.0);
  EXPECT_LE(m.recall, 1.0);
  EXPECT_GE(m.resolution, -1.0);
  EXPECT_LE(m.resolution, 1.0);
  EXPECT_GE(m.resolution_pvalue, 0.0);
  EXPECT_LE(m.resolution_pvalue, 1.0);
  EXPECT_GE(m.calibration, -1.0);
  EXPECT_LE(m.calibration, 1.0);
}

TEST_P(RandomScenarioTest, AccumulatedCurvesEndAtFinalMeasures) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 3);
  const auto history = RandomHistory(10, 8, 25, rng);
  const auto reference = RandomReference(10, 8, 10, rng);
  const ExpertMeasures final_measures =
      ComputeMeasures(history, 10, 8, reference);
  const AccumulatedCurves curves =
      ComputeAccumulatedCurves(history, 10, 8, reference);
  ASSERT_EQ(curves.precision.size(), history.size());
  EXPECT_NEAR(curves.precision.back(), final_measures.precision, 1e-12);
  EXPECT_NEAR(curves.recall.back(), final_measures.recall, 1e-12);
  EXPECT_NEAR(curves.calibration.back(), final_measures.calibration,
              1e-12);
}

TEST_P(RandomScenarioTest, PredictorsBoundedAndFinite) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 4);
  const auto history = RandomHistory(15, 11, 50, rng);
  const auto matrix = history.ToMatrix(15, 11);
  for (const auto& p : matching::ComputePredictors(matrix)) {
    EXPECT_TRUE(std::isfinite(p.value)) << p.name;
  }
  // Specific range-bound predictors.
  const auto predictors = matching::ComputePredictors(matrix);
  for (const auto& p : predictors) {
    if (p.name == "dom" || p.name == "bbm" || p.name == "matchRatio" ||
        p.name == "rowCoverage" || p.name == "colCoverage" ||
        p.name == "pca1" || p.name == "pca2") {
      EXPECT_GE(p.value, 0.0) << p.name;
      EXPECT_LE(p.value, 1.0 + 1e-9) << p.name;
    }
  }
}

TEST_P(RandomScenarioTest, BiasAdjustmentPreservesMatchSet) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  const auto history = RandomHistory(8, 8, 20, rng);
  const auto matrix = history.ToMatrix(8, 8);
  const double bias = rng.Uniform(-0.4, 0.4);
  const auto adjusted = AdjustForBias(matrix, bias);
  EXPECT_EQ(adjusted.MatchSize(), matrix.MatchSize());
  EXPECT_EQ(adjusted.Match(), matrix.Match());
  // Zero bias is (numerically) the identity on the declared entries,
  // up to the clamp floor.
  const auto identity = AdjustForBias(matrix, 0.0);
  for (const auto& [i, j] : matrix.Match()) {
    EXPECT_NEAR(identity.At(i, j),
                std::max(matrix.At(i, j), 0.01), 1e-12);
  }
}

TEST_P(RandomScenarioTest, FusionOfIdenticalMatchersIsThatMatcher) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 6);
  const auto history = RandomHistory(8, 8, 20, rng);
  const auto matrix = history.ToMatrix(8, 8);
  const auto fused = FuseCrowd({matrix, matrix, matrix},
                               {1.0, 1.0, 1.0}, matrix.MatchSize());
  EXPECT_EQ(fused.Match(), matrix.Match());
}

TEST_P(RandomScenarioTest, PrefixMeasuresConsistentWithWindows) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const auto history = RandomHistory(10, 10, 30, rng);
  // A prefix equals the window starting at zero.
  const auto prefix = history.Prefix(12);
  const auto window = history.Window(0, 12);
  ASSERT_EQ(prefix.size(), window.size());
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    EXPECT_EQ(prefix.at(i).source, window.at(i).source);
    EXPECT_DOUBLE_EQ(prefix.at(i).confidence, window.at(i).confidence);
  }
}

TEST_P(RandomScenarioTest, PreprocessingNeverGrowsHistory) {
  stats::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 8);
  const auto history = RandomHistory(10, 10, 45, rng);
  const auto processed = history.Preprocessed(3, 2.0);
  EXPECT_LE(processed.size(), history.size());
  // The warm-up removal alone drops exactly three decisions.
  EXPECT_LE(processed.size(), history.size() - 3);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomScenarioTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace mexi
