#include "matching/match_matrix.h"

#include <gtest/gtest.h>

namespace mexi::matching {
namespace {

TEST(MatchMatrixTest, SetClampsAndReads) {
  MatchMatrix m(3, 4);
  m.Set(0, 0, 0.7);
  m.Set(1, 1, 1.5);
  m.Set(2, 3, -0.5);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.7);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.At(2, 3), 0.0);
  EXPECT_THROW(m.Set(3, 0, 0.5), std::out_of_range);
  EXPECT_THROW(m.At(0, 4), std::out_of_range);
}

TEST(MatchMatrixTest, MatchExtractsNonZeroEntries) {
  MatchMatrix m(2, 2);
  m.Set(0, 1, 0.4);
  m.Set(1, 0, 0.8);
  const auto sigma = m.Match();
  ASSERT_EQ(sigma.size(), 2u);
  EXPECT_EQ(sigma[0], (ElementPair{0, 1}));
  EXPECT_EQ(sigma[1], (ElementPair{1, 0}));
  EXPECT_EQ(m.MatchSize(), 2u);
  EXPECT_EQ(m.MatchValues(), (std::vector<double>{0.4, 0.8}));
}

TEST(MatchMatrixTest, FromReference) {
  const MatchMatrix ref =
      MatchMatrix::FromReference({{0, 0}, {1, 2}}, 2, 3);
  EXPECT_DOUBLE_EQ(ref.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(ref.At(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(ref.At(0, 1), 0.0);
  EXPECT_THROW(MatchMatrix::FromReference({{5, 0}}, 2, 3),
               std::out_of_range);
}

TEST(MatchMatrixTest, PaperExamplePrecisionRecall) {
  // Example 1 of the paper: match {M34, M11, M12, M21}, reference
  // {M11, M12, M23, M34} -> P = R = 3/4. (1-based indices in the paper.)
  MatchMatrix m(4, 4);
  m.Set(2, 3, 1.0);   // M34
  m.Set(0, 0, 0.5);   // M11
  m.Set(0, 1, 0.5);   // M12
  m.Set(1, 0, 0.45);  // M21
  const MatchMatrix ref =
      MatchMatrix::FromReference({{0, 0}, {0, 1}, {1, 2}, {2, 3}}, 4, 4);
  EXPECT_EQ(m.IntersectionSize(ref), 3u);
  EXPECT_DOUBLE_EQ(m.PrecisionAgainst(ref), 0.75);
  EXPECT_DOUBLE_EQ(m.RecallAgainst(ref), 0.75);
}

TEST(MatchMatrixTest, EmptyMatchEdgeCases) {
  MatchMatrix m(2, 2);
  const MatchMatrix ref = MatchMatrix::FromReference({{0, 0}}, 2, 2);
  EXPECT_DOUBLE_EQ(m.PrecisionAgainst(ref), 0.0);
  EXPECT_DOUBLE_EQ(m.RecallAgainst(ref), 0.0);
  MatchMatrix full(2, 2);
  full.Set(0, 0, 1.0);
  const MatchMatrix empty_ref(2, 2);
  EXPECT_DOUBLE_EQ(full.RecallAgainst(empty_ref), 0.0);
}

TEST(MatchMatrixTest, ShapeMismatchRejected) {
  MatchMatrix a(2, 2), b(2, 3);
  EXPECT_THROW(a.IntersectionSize(b), std::invalid_argument);
}

}  // namespace
}  // namespace mexi::matching
