#include "ml/matrix.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include <gtest/gtest.h>

namespace mexi::ml {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m.At(0, 0), 7.0);
  EXPECT_THROW(m.At(2, 0), std::out_of_range);
  EXPECT_THROW(m.At(0, 3), std::out_of_range);
}

TEST(MatrixTest, RejectsShapesWhoseElementCountOverflows) {
  // rows*cols wrapping size_t would silently build an undersized buffer
  // behind unchecked operator(); the constructor must refuse instead.
  const std::size_t huge = std::size_t{1} << 33;
  EXPECT_THROW(Matrix(huge, huge), std::length_error);
  EXPECT_THROW(Matrix(3, std::numeric_limits<std::size_t>::max() / 2),
               std::length_error);
  // Degenerate-but-valid shapes still work.
  EXPECT_EQ(Matrix(0, huge).size(), 0u);
  EXPECT_EQ(Matrix(huge, 0).size(), 0u);
}

TEST(MatrixTest, FromRowsAndIdentity) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW(Matrix::FromRows({{1, 2}, {3}}), std::invalid_argument);

  const Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
}

TEST(MatrixTest, MatMulKnown) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
  EXPECT_THROW(a.MatMul(Matrix(3, 2)), std::invalid_argument);
}

TEST(MatrixTest, MatMulWithIdentity) {
  stats::Rng rng(1);
  const Matrix a = Matrix::RandomGaussian(4, 4, 1.0, rng);
  EXPECT_TRUE(a.MatMul(Matrix::Identity(4)).AlmostEquals(a, 1e-12));
  EXPECT_TRUE(Matrix::Identity(4).MatMul(a).AlmostEquals(a, 1e-12));
}

TEST(MatrixTest, TransposeOfProduct) {
  stats::Rng rng(2);
  const Matrix a = Matrix::RandomGaussian(3, 5, 1.0, rng);
  const Matrix b = Matrix::RandomGaussian(5, 2, 1.0, rng);
  const Matrix lhs = a.MatMul(b).Transposed();
  const Matrix rhs = b.Transposed().MatMul(a.Transposed());
  EXPECT_TRUE(lhs.AlmostEquals(rhs, 1e-10));
}

TEST(MatrixTest, ElementwiseOps) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{4, 3}, {2, 1}});
  EXPECT_DOUBLE_EQ((a + b)(0, 0), 5.0);
  EXPECT_DOUBLE_EQ((a - b)(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(a.Hadamard(b)(1, 0), 6.0);
  EXPECT_DOUBLE_EQ((a * 2.0)(0, 1), 4.0);
  EXPECT_THROW(a + Matrix(1, 2), std::invalid_argument);
}

TEST(MatrixTest, RowBroadcastAndColSums) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix bias = Matrix::FromRows({{10, 20}});
  const Matrix shifted = a.AddRowBroadcast(bias);
  EXPECT_DOUBLE_EQ(shifted(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(shifted(1, 1), 24.0);
  const Matrix sums = a.ColSums();
  EXPECT_DOUBLE_EQ(sums(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(sums(0, 1), 6.0);
}

TEST(MatrixTest, Norms) {
  const Matrix m = Matrix::FromRows({{3, -4}, {0, 0}});
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(m.InfNorm(), 7.0);   // max row abs sum
  EXPECT_DOUBLE_EQ(m.L1Norm(), 4.0);    // max col abs sum
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 4.0);
  EXPECT_DOUBLE_EQ(m.Sum(), -1.0);
}

TEST(MatrixTest, RowColExtraction) {
  const Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.Row(1), (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(m.Col(2), (std::vector<double>{3, 6}));
  Matrix mutated = m;
  mutated.SetRow(0, {7, 8, 9});
  EXPECT_DOUBLE_EQ(mutated(0, 2), 9.0);
  EXPECT_THROW(mutated.SetRow(0, {1}), std::invalid_argument);
}

TEST(MatrixTest, ApplyAndFill) {
  Matrix m = Matrix::FromRows({{1, -2}});
  const Matrix abs = m.Apply([](double v) { return std::fabs(v); });
  EXPECT_DOUBLE_EQ(abs(0, 1), 2.0);
  m.Fill(3.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 3.0);
}

TEST(MatrixTest, GlorotUniformWithinLimit) {
  stats::Rng rng(3);
  const Matrix w = Matrix::GlorotUniform(10, 10, rng);
  const double limit = std::sqrt(6.0 / 20.0);
  for (double v : w.data()) {
    EXPECT_LE(std::fabs(v), limit);
  }
}

struct ShapeCase {
  std::size_t n, k, m;
};

class MatMulShapeTest : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(MatMulShapeTest, AssociativityHolds) {
  const auto& p = GetParam();
  stats::Rng rng(p.n * 100 + p.k * 10 + p.m);
  const Matrix a = Matrix::RandomGaussian(p.n, p.k, 1.0, rng);
  const Matrix b = Matrix::RandomGaussian(p.k, p.m, 1.0, rng);
  const Matrix c = Matrix::RandomGaussian(p.m, p.k, 1.0, rng);
  const Matrix lhs = a.MatMul(b).MatMul(c);
  const Matrix rhs = a.MatMul(b.MatMul(c));
  EXPECT_TRUE(lhs.AlmostEquals(rhs, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatMulShapeTest,
                         ::testing::Values(ShapeCase{1, 1, 1},
                                           ShapeCase{2, 3, 4},
                                           ShapeCase{5, 1, 5},
                                           ShapeCase{7, 8, 3},
                                           ShapeCase{10, 10, 10}));

}  // namespace
}  // namespace mexi::ml
