#include "stats/hypothesis.h"

#include <gtest/gtest.h>

namespace mexi::stats {
namespace {

std::vector<double> Shifted(double shift, double spread, int n,
                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out;
  for (int i = 0; i < n; ++i) out.push_back(rng.Gaussian(shift, spread));
  return out;
}

TEST(BootstrapTest, DetectsLargeShift) {
  Rng rng(1);
  const auto a = Shifted(1.0, 0.5, 60, 2);
  const auto b = Shifted(0.0, 0.5, 60, 3);
  const auto result = BootstrapMeanDifferenceTest(a, b, 1000, 0.05, rng);
  EXPECT_TRUE(result.significant);
  EXPECT_GT(result.observed_difference, 0.5);
  EXPECT_LT(result.p_value, 0.05);
}

TEST(BootstrapTest, SameDistributionUsuallyInsignificant) {
  Rng rng(4);
  const auto a = Shifted(0.0, 1.0, 50, 105);
  const auto b = Shifted(0.0, 1.0, 50, 106);
  const auto result = BootstrapMeanDifferenceTest(a, b, 1000, 0.05, rng);
  EXPECT_GT(result.p_value, 0.05);
}

TEST(BootstrapTest, EmptyInputsSafe) {
  Rng rng(7);
  const auto result = BootstrapMeanDifferenceTest({}, {1.0}, 100, 0.05, rng);
  EXPECT_FALSE(result.significant);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(BootstrapTest, Deterministic) {
  const auto a = Shifted(0.5, 1.0, 30, 8);
  const auto b = Shifted(0.0, 1.0, 30, 9);
  Rng rng1(10), rng2(10);
  const auto r1 = BootstrapMeanDifferenceTest(a, b, 500, 0.05, rng1);
  const auto r2 = BootstrapMeanDifferenceTest(a, b, 500, 0.05, rng2);
  EXPECT_DOUBLE_EQ(r1.p_value, r2.p_value);
}

TEST(PairedBootstrapTest, DetectsConsistentPairedGain) {
  Rng rng(11);
  std::vector<double> a, b;
  Rng data(12);
  for (int i = 0; i < 40; ++i) {
    const double base = data.Gaussian(0.0, 1.0);
    b.push_back(base);
    a.push_back(base + 0.3 + data.Gaussian(0.0, 0.05));
  }
  const auto result = PairedBootstrapTest(a, b, 1000, 0.05, rng);
  EXPECT_TRUE(result.significant);
  EXPECT_THROW(PairedBootstrapTest({1.0}, {1.0, 2.0}, 10, 0.05, rng),
               std::invalid_argument);
}

TEST(WelchTTest, AgreesWithBootstrapOnClearShift) {
  const auto a = Shifted(1.0, 0.5, 50, 60);
  const auto b = Shifted(0.0, 0.5, 50, 61);
  const auto welch = WelchTTest(a, b, 0.05);
  EXPECT_TRUE(welch.significant);
  EXPECT_GT(welch.observed_difference, 0.5);
  const auto same = WelchTTest(Shifted(0.0, 1.0, 50, 62),
                               Shifted(0.0, 1.0, 50, 63), 0.05);
  EXPECT_GT(same.p_value, 0.05);
  EXPECT_FALSE(WelchTTest({1.0}, {1.0, 2.0}, 0.05).significant);
}

TEST(ConfidenceIntervalTest, ContainsTrueMean) {
  Rng rng(13);
  const auto sample = Shifted(2.0, 1.0, 200, 14);
  const auto ci = BootstrapMeanConfidenceInterval(sample, 800, 0.95, rng);
  EXPECT_LT(ci.lower, 2.0);
  EXPECT_GT(ci.upper, 2.0);
  EXPECT_LT(ci.lower, ci.upper);
  EXPECT_NEAR(ci.point, 2.0, 0.3);
}

}  // namespace
}  // namespace mexi::stats
