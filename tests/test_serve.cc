#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <iomanip>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/mexi.h"
#include "matching/io.h"
#include "robust/checkpoint.h"
#include "robust/serialize.h"
#include "serve/bundle.h"
#include "serve/http.h"
#include "test_fixtures.h"

namespace mexi::serve {
namespace {

namespace fs = std::filesystem;

MexiConfig FastConfig() {
  MexiConfig config;
  config.submatcher_mode = SubmatcherMode::kNone;
  config.seq.lstm.epochs = 3;
  config.seq.lstm.hidden_dim = 8;
  config.seq.lstm.dense_dim = 8;
  config.spa.cnn.epochs = 2;
  config.spa.pretrain_images = 8;
  config.spa.pretrain_epochs = 1;
  return config;
}

/// A decoded HTTP response from the raw-socket test client.
struct RawResponse {
  bool ok = false;  // transport-level success + parseable header block
  int status = 0;
  std::map<std::string, std::string> headers;  // lower-cased names
  std::string body;                            // de-chunked
};

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

int ConnectTo(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval tv{};
  tv.tv_sec = 10;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string ReadToEof(int fd) {
  std::string out;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

RawResponse ParseResponse(const std::string& wire) {
  RawResponse response;
  const std::size_t header_end = wire.find("\r\n\r\n");
  if (header_end == std::string::npos) return response;
  std::istringstream head(wire.substr(0, header_end));
  std::string line;
  if (!std::getline(head, line)) return response;
  if (line.rfind("HTTP/1.1 ", 0) != 0) return response;
  response.status = std::atoi(line.c_str() + 9);
  while (std::getline(head, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string value = line.substr(colon + 1);
    const std::size_t start = value.find_first_not_of(' ');
    value = start == std::string::npos ? "" : value.substr(start);
    response.headers[Lower(line.substr(0, colon))] = value;
  }
  std::string raw_body = wire.substr(header_end + 4);
  if (response.headers.count("transfer-encoding")) {
    // De-chunk: <hex>\r\n<bytes>\r\n ... 0\r\n\r\n
    std::string decoded;
    std::size_t pos = 0;
    while (true) {
      const std::size_t eol = raw_body.find("\r\n", pos);
      if (eol == std::string::npos) return response;  // truncated
      const long size = std::strtol(raw_body.c_str() + pos, nullptr, 16);
      if (size < 0) return response;
      if (size == 0) break;
      pos = eol + 2;
      if (pos + static_cast<std::size_t>(size) + 2 > raw_body.size()) {
        return response;  // truncated chunk
      }
      decoded.append(raw_body, pos, static_cast<std::size_t>(size));
      pos += static_cast<std::size_t>(size) + 2;
    }
    response.body = std::move(decoded);
  } else {
    response.body = std::move(raw_body);
  }
  response.ok = true;
  return response;
}

/// One-shot request with Connection: close, reading the socket to EOF.
RawResponse Fetch(int port, const std::string& method, const std::string& path,
                  const std::string& body = "",
                  const std::vector<std::pair<std::string, std::string>>&
                      extra_headers = {}) {
  const int fd = ConnectTo(port);
  if (fd < 0) return {};
  std::string request = method + " " + path + " HTTP/1.1\r\n" +
                        "Host: 127.0.0.1\r\nConnection: close\r\n";
  for (const auto& [name, value] : extra_headers) {
    request += name + ": " + value + "\r\n";
  }
  if (!body.empty() || method == "POST") {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n" + body;
  RawResponse response;
  if (SendAll(fd, request)) response = ParseResponse(ReadToEof(fd));
  ::close(fd);
  return response;
}

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = testing::MakeSmallPoFixture(12, 47).release();
    const auto measures = ComputeAllMeasures(fixture_->input);
    const ExpertThresholds thresholds = FitThresholds(measures);
    const auto labels = LabelsFromMeasures(measures, thresholds);
    model_ = new Mexi(FastConfig());
    model_->Fit(fixture_->input.matchers, labels, fixture_->input.context);
    robust::BinaryWriter writer;
    model_->SaveState(writer);
    model_bytes_ = new std::vector<std::uint8_t>(writer.buffer());
  }
  static void TearDownTestSuite() {
    delete model_bytes_;
    delete model_;
    delete fixture_;
    model_bytes_ = nullptr;
    model_ = nullptr;
    fixture_ = nullptr;
  }

  /// Starts a server over a deserialized copy of the shared model
  /// (Mexi is move-only) and runs its poll loop on a background thread.
  void StartServer(ServerConfig config) {
    config.host = "127.0.0.1";
    config.port = 0;
    Mexi copy;
    robust::BinaryReader reader(*model_bytes_);
    copy.LoadState(reader);
    server_ = std::make_unique<Server>(config, std::move(copy),
                                       model_->ConfigFingerprint());
    server_->Start();
    runner_ = std::thread([this] { server_->Run(); });
  }

  void StopServer() {
    if (server_ && runner_.joinable()) {
      server_->RequestShutdown();
      runner_.join();
    }
    server_.reset();
  }

  void TearDown() override { StopServer(); }

  int Port() const { return server_->port(); }

  /// The POST body for `matchers`: decisions CSV + "%%" + movements CSV,
  /// written at full precision so the server parses the same doubles.
  static std::string TracesBody(
      const std::vector<matching::LoadedMatcher>& matchers) {
    std::ostringstream decisions;
    decisions << std::setprecision(17);
    matching::WriteDecisionsCsv(matchers, decisions);
    std::ostringstream movements;
    movements << std::setprecision(17);
    matching::WriteMovementsCsv(matchers, movements);
    return decisions.str() + "%%\n" + movements.str();
  }

  /// Round-trips `body` through the same CSV readers the server uses, so
  /// expected answers are computed on bit-identical parsed inputs.
  static std::vector<matching::LoadedMatcher> Reparse(
      const std::string& body) {
    const std::size_t sep = body.find("\n%%\n");
    std::istringstream decisions(body.substr(0, sep + 1));
    auto matchers = matching::ReadDecisionsCsv(decisions);
    std::istringstream movements(body.substr(sep + 4));
    matching::ReadMovementsCsv(movements, &matchers);
    return matchers;
  }

  static std::size_t Rows() { return fixture_->input.matchers[0].source_size; }
  static std::size_t Cols() { return fixture_->input.matchers[0].target_size; }
  static std::string CharacterizePath() {
    return "/characterize?rows=" + std::to_string(Rows()) +
           "&cols=" + std::to_string(Cols());
  }
  static std::string StreamPath() {
    return "/stream?rows=" + std::to_string(Rows()) +
           "&cols=" + std::to_string(Cols());
  }

  static std::vector<matching::LoadedMatcher> FirstMatchers(std::size_t n) {
    std::vector<matching::LoadedMatcher> out;
    for (std::size_t i = 0; i < n && i < fixture_->input.matchers.size();
         ++i) {
      const MatcherView& view = fixture_->input.matchers[i];
      matching::LoadedMatcher lm;
      lm.id = static_cast<int>(i);
      lm.history = *view.history;
      lm.movement = *view.movement;
      out.push_back(std::move(lm));
    }
    return out;
  }

  static testing::StudyFixture* fixture_;
  static Mexi* model_;
  static std::vector<std::uint8_t>* model_bytes_;
  std::unique_ptr<Server> server_;
  std::thread runner_;
};

testing::StudyFixture* ServeTest::fixture_ = nullptr;
Mexi* ServeTest::model_ = nullptr;
std::vector<std::uint8_t>* ServeTest::model_bytes_ = nullptr;

TEST_F(ServeTest, StatusAndMetricsServeInline) {
  StartServer({});
  const RawResponse status = Fetch(Port(), "GET", "/status");
  ASSERT_TRUE(status.ok);
  EXPECT_EQ(status.status, 200);
  EXPECT_NE(status.body.find("\"state\":\"serving\""), std::string::npos);
  EXPECT_NE(status.body.find(std::to_string(model_->ConfigFingerprint())),
            std::string::npos);
  EXPECT_EQ(status.headers.at("content-type"), "application/json");

  const RawResponse metrics = Fetch(Port(), "GET", "/metrics");
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("\"counters\""), std::string::npos);
}

/// The batch endpoint answers byte-identically to local inference on the
/// same parsed traces — the restart-identity guarantee in miniature.
TEST_F(ServeTest, CharacterizeMatchesLocalInferenceByteForByte) {
  StartServer({});
  const std::string body = TracesBody(FirstMatchers(3));
  const RawResponse response =
      Fetch(Port(), "POST", CharacterizePath(), body);
  ASSERT_TRUE(response.ok);
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(response.headers.at("content-type"), "application/x-ndjson");

  std::string expected;
  for (const matching::LoadedMatcher& lm : Reparse(body)) {
    MatcherView view;
    view.history = &lm.history;
    view.movement = &lm.movement;
    view.source_size = Rows();
    view.target_size = Cols();
    expected += FormatEmissionLine(lm.id, lm.history.size(), true,
                                   model_->Characterize(view),
                                   model_->CharacterizeProba(view));
  }
  EXPECT_EQ(response.body, expected);
}

/// /stream emits one chunked JSONL line per decision plus the Finalize
/// line, whose probabilities equal the batch answer bitwise.
TEST_F(ServeTest, StreamEmitsPerDecisionLinesAndExactFinal) {
  StartServer({});
  const std::string body = TracesBody(FirstMatchers(1));
  const RawResponse response =
      Fetch(Port(), "POST", StreamPath(), body);
  ASSERT_TRUE(response.ok);
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(response.headers.at("transfer-encoding"), "chunked");

  std::vector<std::string> lines;
  std::istringstream in(response.body);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  const auto matchers = Reparse(body);
  ASSERT_EQ(lines.size(), matchers[0].history.size() + 1);
  for (std::size_t k = 0; k + 1 < lines.size(); ++k) {
    EXPECT_NE(lines[k].find("\"final\":false"), std::string::npos) << k;
  }

  MatcherView view;
  view.history = &matchers[0].history;
  view.movement = &matchers[0].movement;
  view.source_size = Rows();
  view.target_size = Cols();
  const std::string expected_final = FormatEmissionLine(
      matchers[0].id, matchers[0].history.size(), true,
      model_->Characterize(view), model_->CharacterizeProba(view));
  EXPECT_EQ(lines.back() + "\n", expected_final);
}

TEST_F(ServeTest, MalformedRequestsGetClientErrors) {
  StartServer({});
  // Unknown path.
  EXPECT_EQ(Fetch(Port(), "GET", "/nope").status, 404);
  // Wrong method on a POST endpoint.
  EXPECT_EQ(Fetch(Port(), "GET", "/characterize?rows=2&cols=2").status, 405);
  // Missing the task shape.
  const std::string body = TracesBody(FirstMatchers(1));
  EXPECT_EQ(Fetch(Port(), "POST", "/characterize", body).status, 400);
  // Garbage payload.
  EXPECT_EQ(Fetch(Port(), "POST", CharacterizePath(),
                  "not,a,csv")
                .status,
            400);
  // Trailing garbage in the shape is rejected, not silently truncated.
  EXPECT_EQ(Fetch(Port(), "POST", "/characterize?rows=6junk&cols=2", body)
                .status,
            400);
  // Non-positive shape.
  EXPECT_EQ(Fetch(Port(), "POST", "/characterize?rows=-3&cols=2", body)
                .status,
            400);
  // A shape whose product would wrap size_t (2^32 * 2^32) must be
  // refused before it sizes any dense matrix allocation.
  EXPECT_EQ(Fetch(Port(), "POST",
                  "/characterize?rows=4294967296&cols=4294967296", body)
                .status,
            400);
  // Huge-but-representable shapes are shed too: ~80 GB of dense matrix
  // would break the bounded-memory contract.
  EXPECT_EQ(Fetch(Port(), "POST", "/characterize?rows=100000&cols=100000",
                  body)
                .status,
            400);
  EXPECT_EQ(Fetch(Port(), "POST", "/stream?rows=100000&cols=100000", body)
                .status,
            400);
  // Unparseable request line.
  const int fd = ConnectTo(Port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, "BOGUS\r\n\r\n"));
  const RawResponse bad = ParseResponse(ReadToEof(fd));
  ::close(fd);
  ASSERT_TRUE(bad.ok);
  EXPECT_EQ(bad.status, 400);
}

/// An HTTP/1.0 request without a Connection header defaults to close:
/// the one-shot client sees a prompt EOF with the response instead of
/// waiting out the idle read timeout.
TEST_F(ServeTest, Http10DefaultsToConnectionClose) {
  StartServer({});
  const int fd = ConnectTo(Port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, "GET /status HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n"));
  const auto start = std::chrono::steady_clock::now();
  const RawResponse response = ParseResponse(ReadToEof(fd));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ::close(fd);
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.status, 200);
  ASSERT_TRUE(response.headers.count("connection"));
  EXPECT_EQ(response.headers.at("connection"), "close");
  // Well under the 5 s idle timeout the old keep-alive default waited.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
}

/// "close" is honored as a comma-separated token, not only as the whole
/// header value.
TEST_F(ServeTest, ConnectionCloseHonoredInsideTokenList) {
  StartServer({});
  const int fd = ConnectTo(Port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd,
                      "GET /status HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                      "Connection: Close, TE\r\n\r\n"));
  const RawResponse response = ParseResponse(ReadToEof(fd));
  ::close(fd);
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.status, 200);
  ASSERT_TRUE(response.headers.count("connection"));
  EXPECT_EQ(response.headers.at("connection"), "close");
}

/// X-Deadline-Ms may only lower the budget. With a 1 ms server ceiling,
/// a client demanding 10 minutes still deadlines out: 12 matchers of
/// LSTM+CNN inference cannot finish inside 1 ms, so the clamped budget
/// expires mid-compute and surfaces as 504.
TEST_F(ServeTest, DeadlineHeaderCannotRaiseConfiguredBudget) {
  ServerConfig config;
  config.deadline_ms = 1;
  StartServer(config);
  const std::string body = TracesBody(FirstMatchers(12));
  const RawResponse response = Fetch(Port(), "POST", CharacterizePath(), body,
                                     {{"X-Deadline-Ms", "600000"}});
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.status, 504) << response.body;
  EXPECT_NE(response.body.find("deadline"), std::string::npos);
}

/// An expired budget surfaces as 504: a 1 ms deadline queued behind a
/// slow request on the single worker has already expired when the worker
/// reaches it.
TEST_F(ServeTest, ExpiredDeadlineReturns504) {
  ServerConfig config;
  config.num_workers = 1;
  config.queue_max = 8;
  StartServer(config);
  const std::string slow_body = TracesBody(FirstMatchers(12));
  const std::string fast_body = TracesBody(FirstMatchers(1));

  // Occupy the worker, then race the doomed request in behind it.
  std::thread slow([&] {
    Fetch(Port(), "POST", CharacterizePath(), slow_body);
  });
  RawResponse doomed;
  const auto start = std::chrono::steady_clock::now();
  doomed = Fetch(Port(), "POST", CharacterizePath(), fast_body,
                 {{"X-Deadline-Ms", "1"}});
  const auto elapsed = std::chrono::steady_clock::now() - start;
  slow.join();
  ASSERT_TRUE(doomed.ok);
  // The doomed request either queued behind the slow one (504) or won
  // the race to the worker and finished inside its budget (200); both
  // are legal — but a 504 must arrive promptly, never hang.
  if (doomed.status == 504) {
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                  .count(),
              10000);
    EXPECT_NE(doomed.body.find("deadline"), std::string::npos);
  } else {
    EXPECT_EQ(doomed.status, 200);
  }
}

/// Admission control: beyond queue_max the server sheds immediately with
/// 503 + Retry-After instead of buffering without bound.
TEST_F(ServeTest, FullQueueShedsWith503RetryAfter) {
  ServerConfig config;
  config.num_workers = 1;
  config.queue_max = 1;
  config.retry_after_s = 7;
  StartServer(config);
  const std::string slow_body = TracesBody(FirstMatchers(12));

  std::thread slow([&] {
    Fetch(Port(), "POST", CharacterizePath(), slow_body);
  });
  // Wait until the slow request is admitted (inflight >= 1), then any
  // further admission must shed.
  bool admitted = false;
  for (int i = 0; i < 200 && !admitted; ++i) {
    const RawResponse status = Fetch(Port(), "GET", "/status");
    if (status.ok && status.body.find("\"inflight\":0") == std::string::npos) {
      admitted = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  RawResponse shed;
  if (admitted) {
    shed = Fetch(Port(), "POST", CharacterizePath(),
                 TracesBody(FirstMatchers(1)));
  }
  slow.join();
  if (!admitted) GTEST_SKIP() << "slow request finished before observation";
  ASSERT_TRUE(shed.ok);
  // The slow request may have completed between the /status poll and the
  // shed probe; only a genuine overlap must produce the 503.
  if (shed.status == 503) {
    EXPECT_EQ(shed.headers.at("retry-after"), "7");
  } else {
    EXPECT_EQ(shed.status, 200);
  }
}

/// Graceful drain: RequestShutdown stops the loop, Run() returns, and
/// the drain checkpoint (fingerprint + counters) is committed.
TEST_F(ServeTest, DrainCommitsCheckpointAndStops) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "mexi_serve_drain_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  ServerConfig config;
  config.checkpoint_dir = dir.string();
  StartServer(config);
  EXPECT_EQ(Fetch(Port(), "GET", "/status").status, 200);
  StopServer();

  robust::CheckpointManager manager(dir.string(), "serve");
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(manager.LoadLatest(&payload).ok());
  ASSERT_GE(payload.size(), 4u + 8u);
  EXPECT_EQ(std::string(payload.begin(), payload.begin() + 4), "MXSV");
  fs::remove_all(dir);
}

/// A drained server leaves no background threads: StartServer/StopServer
/// twice over the same model is clean (Run() returns, sockets release).
TEST_F(ServeTest, RestartOnSamePortPatternIsClean) {
  StartServer({});
  const std::string body = TracesBody(FirstMatchers(1));
  const RawResponse first =
      Fetch(Port(), "POST", CharacterizePath(), body);
  ASSERT_EQ(first.status, 200);
  StopServer();

  StartServer({});
  const RawResponse second =
      Fetch(Port(), "POST", CharacterizePath(), body);
  ASSERT_EQ(second.status, 200);
  // Restarted server answers byte-identically.
  EXPECT_EQ(second.body, first.body);
}

}  // namespace
}  // namespace mexi::serve
