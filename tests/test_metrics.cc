#include "ml/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mexi::ml {
namespace {

TEST(MetricsTest, Accuracy) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 1, 0}, {1, 0, 0, 0}), 0.75);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
  EXPECT_THROW(Accuracy({1}, {1, 0}), std::invalid_argument);
}

TEST(MetricsTest, PrecisionRecallF1) {
  // tp=2, fp=1, fn=1.
  const std::vector<int> truth{1, 1, 1, 0, 0};
  const std::vector<int> pred{1, 1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(Precision(truth, pred), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Recall(truth, pred), 2.0 / 3.0);
  EXPECT_NEAR(F1Score(truth, pred), 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, PrecisionRecallDegenerate) {
  EXPECT_DOUBLE_EQ(Precision({0, 0}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(Recall({0, 0}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(F1Score({0, 0}, {0, 0}), 0.0);
}

TEST(MetricsTest, RocAucPerfectAndInverted) {
  const std::vector<int> truth{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(RocAuc(truth, {0.1, 0.2, 0.8, 0.9}), 1.0);
  EXPECT_DOUBLE_EQ(RocAuc(truth, {0.9, 0.8, 0.2, 0.1}), 0.0);
}

TEST(MetricsTest, RocAucRandomAndOneClass) {
  EXPECT_DOUBLE_EQ(RocAuc({1, 1, 1}, {0.1, 0.5, 0.9}), 0.5);
  // Ties on all scores -> 0.5 via average ranks.
  EXPECT_DOUBLE_EQ(RocAuc({0, 1, 0, 1}, {0.5, 0.5, 0.5, 0.5}), 0.5);
}

TEST(MetricsTest, MultiLabelJaccard) {
  // Example 1: truth {1,0,1,0}, pred {1,1,1,0}: |inter|=2, |union|=3.
  // Example 2: exact match: 1. Mean = (2/3 + 1) / 2.
  const double a = MultiLabelJaccard({{1, 0, 1, 0}, {0, 1, 0, 0}},
                                     {{1, 1, 1, 0}, {0, 1, 0, 0}});
  EXPECT_NEAR(a, (2.0 / 3.0 + 1.0) / 2.0, 1e-12);
}

TEST(MetricsTest, MultiLabelJaccardBothEmptyIsPerfect) {
  EXPECT_DOUBLE_EQ(MultiLabelJaccard({{0, 0}}, {{0, 0}}), 1.0);
  EXPECT_DOUBLE_EQ(MultiLabelJaccard({{0, 0}}, {{1, 0}}), 0.0);
}

TEST(MetricsTest, LogLossKnownValue) {
  // Perfectly confident and right -> ~0; confident and wrong -> large.
  EXPECT_NEAR(LogLoss({1}, {1.0}), 0.0, 1e-9);
  EXPECT_GT(LogLoss({1}, {0.0}), 10.0);
  EXPECT_NEAR(LogLoss({1, 0}, {0.5, 0.5}), std::log(2.0), 1e-12);
}

}  // namespace
}  // namespace mexi::ml
