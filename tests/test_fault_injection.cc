#include "robust/fault_injection.h"

#include <gtest/gtest.h>

#include <vector>

#include "robust/status.h"

namespace mexi::robust {
namespace {

TEST(FaultInjectionTest, UnconfiguredIsInert) {
  FaultInjector injector;
  EXPECT_FALSE(injector.active());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.Hit(FaultSite::kEpochEnd), FaultKind::kNone);
  }
}

TEST(FaultInjectionTest, FiresAtExactOccurrenceOnce) {
  FaultInjector injector;
  injector.Configure("nan@lstm_grad:3");
  EXPECT_TRUE(injector.active());
  EXPECT_EQ(injector.Hit(FaultSite::kLstmGradient), FaultKind::kNone);
  EXPECT_EQ(injector.Hit(FaultSite::kLstmGradient), FaultKind::kNone);
  EXPECT_EQ(injector.Hit(FaultSite::kLstmGradient), FaultKind::kNan);
  // A clause fires exactly once.
  EXPECT_EQ(injector.Hit(FaultSite::kLstmGradient), FaultKind::kNone);
}

TEST(FaultInjectionTest, SitesKeepIndependentCounters) {
  FaultInjector injector;
  injector.Configure("abort@epoch:1,bitflip@ckpt_write:2");
  // Hits at other sites never advance the epoch counter.
  EXPECT_EQ(injector.Hit(FaultSite::kFoldEnd), FaultKind::kNone);
  EXPECT_EQ(injector.Hit(FaultSite::kCheckpointWrite), FaultKind::kNone);
  EXPECT_EQ(injector.Hit(FaultSite::kEpochEnd), FaultKind::kAbort);
  EXPECT_EQ(injector.Hit(FaultSite::kCheckpointWrite), FaultKind::kBitFlip);
}

TEST(FaultInjectionTest, MultipleClausesOneSite) {
  FaultInjector injector;
  injector.Configure("enospc@ckpt_write:1,short_write@ckpt_write:2");
  EXPECT_EQ(injector.Hit(FaultSite::kCheckpointWrite), FaultKind::kEnospc);
  EXPECT_EQ(injector.Hit(FaultSite::kCheckpointWrite),
            FaultKind::kShortWrite);
  EXPECT_EQ(injector.Hit(FaultSite::kCheckpointWrite), FaultKind::kNone);
}

TEST(FaultInjectionTest, ClearDisarms) {
  FaultInjector injector;
  injector.Configure("kill@fold:1");
  injector.Clear();
  EXPECT_FALSE(injector.active());
  EXPECT_EQ(injector.Hit(FaultSite::kFoldEnd), FaultKind::kNone);
}

TEST(FaultInjectionTest, EmptySpecClears) {
  FaultInjector injector;
  injector.Configure("nan@cnn_grad:1");
  injector.Configure("");
  EXPECT_FALSE(injector.active());
}

TEST(FaultInjectionTest, BadSpecThrowsInvalidArgument) {
  FaultInjector injector;
  const char* bad_specs[] = {
      "nonsense",           // no @
      "nan@",               // missing site
      "@epoch:1",           // missing kind
      "nan@epoch",          // missing occurrence
      "nan@epoch:0",        // occurrence must be >= 1
      "nan@epoch:x",        // non-numeric occurrence
      "frobnicate@epoch:1",  // unknown kind
      "nan@nowhere:1",      // unknown site
  };
  for (const char* spec : bad_specs) {
    try {
      injector.Configure(spec);
      FAIL() << "spec accepted: " << spec;
    } catch (const StatusError& e) {
      EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument) << spec;
    }
  }
}

TEST(FaultInjectionTest, DrawIsSeedDeterministic) {
  FaultInjector a;
  FaultInjector b;
  a.Configure("bitflip@ckpt_write:1", 42);
  b.Configure("bitflip@ckpt_write:1", 42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Draw(), b.Draw());
  FaultInjector c;
  c.Configure("bitflip@ckpt_write:1", 43);
  bool any_different = false;
  FaultInjector d;
  d.Configure("bitflip@ckpt_write:1", 42);
  for (int i = 0; i < 10; ++i) {
    if (c.Draw() != d.Draw()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(FaultInjectionTest, NamesRoundTripInSpec) {
  // Every kind/site name pair parses back, locking the spec grammar.
  const FaultKind kinds[] = {FaultKind::kShortWrite, FaultKind::kBitFlip,
                             FaultKind::kEnospc,     FaultKind::kNan,
                             FaultKind::kAbort,      FaultKind::kKill,
                             FaultKind::kTornRead,   FaultKind::kEintr,
                             FaultKind::kConnReset,  FaultKind::kSlowWrite};
  const FaultSite sites[] = {
      FaultSite::kCheckpointWrite, FaultSite::kLstmGradient,
      FaultSite::kCnnGradient,     FaultSite::kLogRegGradient,
      FaultSite::kEpochEnd,        FaultSite::kFoldEnd,
      FaultSite::kIoRead,          FaultSite::kNetAccept,
      FaultSite::kNetRead,         FaultSite::kNetWrite};
  for (FaultKind kind : kinds) {
    for (FaultSite site : sites) {
      FaultInjector injector;
      const std::string spec = std::string(FaultKindName(kind)) + "@" +
                               FaultSiteName(site) + ":1";
      EXPECT_NO_THROW(injector.Configure(spec)) << spec;
      EXPECT_EQ(injector.Hit(site), kind) << spec;
    }
  }
}

TEST(FaultInjectionTest, NetworkSitesKeepIndependentCounters) {
  // The serving edges are three distinct sites: a clause armed at
  // net_write must not fire from reads or accepts, and each site's hit
  // counter advances on its own.
  FaultInjector injector;
  injector.Configure(
      "conn_reset@net_write:2,slow_write@net_read:1,kill@net_accept:3");
  EXPECT_EQ(injector.Hit(FaultSite::kNetRead), FaultKind::kSlowWrite);
  EXPECT_EQ(injector.Hit(FaultSite::kNetWrite), FaultKind::kNone);
  EXPECT_EQ(injector.Hit(FaultSite::kNetAccept), FaultKind::kNone);
  EXPECT_EQ(injector.Hit(FaultSite::kNetWrite), FaultKind::kConnReset);
  EXPECT_EQ(injector.Hit(FaultSite::kNetAccept), FaultKind::kNone);
  EXPECT_EQ(injector.Hit(FaultSite::kNetAccept), FaultKind::kKill);
  // Every clause fired exactly once; all three sites are quiet now.
  EXPECT_EQ(injector.Hit(FaultSite::kNetRead), FaultKind::kNone);
  EXPECT_EQ(injector.Hit(FaultSite::kNetWrite), FaultKind::kNone);
  EXPECT_EQ(injector.Hit(FaultSite::kNetAccept), FaultKind::kNone);
}

TEST(FaultInjectionTest, ConnResetAndSlowWriteAreReplayable) {
  // Same spec + seed -> the same firing pattern, run after run. The
  // serve chaos harness leans on this to make network faults
  // deterministic for a fixed request schedule.
  for (int run = 0; run < 2; ++run) {
    FaultInjector injector;
    injector.Configure("conn_reset@net_write:3,slow_write@net_write:5", 7);
    std::vector<FaultKind> fired;
    for (int i = 0; i < 6; ++i) fired.push_back(injector.Hit(FaultSite::kNetWrite));
    const std::vector<FaultKind> want = {
        FaultKind::kNone,      FaultKind::kNone, FaultKind::kConnReset,
        FaultKind::kNone,      FaultKind::kSlowWrite, FaultKind::kNone};
    EXPECT_EQ(fired, want) << "run " << run;
  }
}

TEST(FaultInjectionTest, NetworkSpecNamesRoundTrip) {
  EXPECT_STREQ(FaultKindName(FaultKind::kConnReset), "conn_reset");
  EXPECT_STREQ(FaultKindName(FaultKind::kSlowWrite), "slow_write");
  EXPECT_STREQ(FaultSiteName(FaultSite::kNetAccept), "net_accept");
  EXPECT_STREQ(FaultSiteName(FaultSite::kNetRead), "net_read");
  EXPECT_STREQ(FaultSiteName(FaultSite::kNetWrite), "net_write");
}

}  // namespace
}  // namespace mexi::robust
