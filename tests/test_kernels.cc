// Pits every ml::kernels primitive against a naive reference loop on
// randomized inputs and demands bitwise-equal results — the same oracle
// pattern test_matrix.cc uses for MatMul vs MatMulNaive. Accumulation
// order is part of the kernel contract (DESIGN.md "Kernels & memory
// layout"), so these tests compare with EXPECT_EQ on doubles, not a
// tolerance.

#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "ml/kernels.h"
#include "stats/rng.h"

namespace mexi::ml::kernels {
namespace {

std::vector<double> RandomVec(std::size_t n, stats::Rng& rng,
                              double zero_fraction = 0.0) {
  std::vector<double> v(n);
  for (auto& x : v) {
    x = rng.Uniform(0.0, 1.0) < zero_fraction ? 0.0
                                              : rng.Gaussian(0.0, 1.0);
  }
  return v;
}

TEST(KernelsTest, FillCopyAddScale) {
  stats::Rng rng(101);
  const std::size_t n = 97;
  auto x = RandomVec(n, rng);
  auto y = RandomVec(n, rng);

  auto ref = y;
  for (std::size_t j = 0; j < n; ++j) ref[j] += x[j];
  auto got = y;
  Add(x.data(), got.data(), n);
  EXPECT_EQ(got, ref);

  for (std::size_t j = 0; j < n; ++j) ref[j] *= 0.37;
  Scale(got.data(), n, 0.37);
  EXPECT_EQ(got, ref);

  Copy(x.data(), got.data(), n);
  EXPECT_EQ(got, x);

  Fill(got.data(), n, -2.5);
  EXPECT_EQ(got, std::vector<double>(n, -2.5));
}

TEST(KernelsTest, AxpyMatchesReference) {
  stats::Rng rng(102);
  const std::size_t n = 113;
  const auto x = RandomVec(n, rng);
  const auto y0 = RandomVec(n, rng);
  const double a = rng.Gaussian(0.0, 2.0);

  auto ref = y0;
  for (std::size_t j = 0; j < n; ++j) ref[j] += a * x[j];
  auto got = y0;
  Axpy(a, x.data(), got.data(), n);
  EXPECT_EQ(got, ref);
}

TEST(KernelsTest, DotMatchesStrictLeftToRightChain) {
  stats::Rng rng(103);
  const std::size_t n = 301;  // long enough to expose reassociation
  const auto x = RandomVec(n, rng);
  const auto y = RandomVec(n, rng);

  double ref = 0.0;
  for (std::size_t j = 0; j < n; ++j) ref += x[j] * y[j];
  EXPECT_EQ(Dot(x.data(), y.data(), n), ref);

  // With a nonzero init the chain must start from it, not add it last.
  const double init = rng.Gaussian(0.0, 1.0);
  double ref_init = init;
  for (std::size_t j = 0; j < n; ++j) ref_init += x[j] * y[j];
  EXPECT_EQ(Dot(x.data(), y.data(), n, init), ref_init);
}

TEST(KernelsTest, DotSkipZeroSkipsExactlyZeroTerms) {
  stats::Rng rng(104);
  const std::size_t n = 157;
  const auto x = RandomVec(n, rng, /*zero_fraction=*/0.4);
  const auto y = RandomVec(n, rng);

  double ref = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    if (x[j] == 0.0) continue;
    ref += x[j] * y[j];
  }
  EXPECT_EQ(DotSkipZero(x.data(), y.data(), n), ref);
}

TEST(KernelsTest, SquaredDistanceMatchesReference) {
  stats::Rng rng(105);
  const std::size_t n = 89;
  const auto x = RandomVec(n, rng);
  const auto y = RandomVec(n, rng);

  double ref = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double d = x[j] - y[j];
    ref += d * d;
  }
  EXPECT_EQ(SquaredDistance(x.data(), y.data(), n), ref);
}

TEST(KernelsTest, GemvAccumMatchesRowMajorLoopWithZeroSkip) {
  stats::Rng rng(106);
  const std::size_t m = 37, n = 53;
  const auto x = RandomVec(m, rng, /*zero_fraction=*/0.3);
  const auto w = RandomVec(m * n, rng);
  const auto y0 = RandomVec(n, rng);

  auto ref = y0;
  for (std::size_t k = 0; k < m; ++k) {
    if (x[k] == 0.0) continue;
    for (std::size_t j = 0; j < n; ++j) ref[j] += x[k] * w[k * n + j];
  }
  auto got = y0;
  GemvAccum(x.data(), m, w.data(), n, got.data());
  EXPECT_EQ(got, ref);
}

TEST(KernelsTest, DotRowsMatchesPerRowDot) {
  stats::Rng rng(111);
  // 10 rows exercises both the interleaved groups and the scalar tail.
  const std::size_t rows = 10, n = 131;
  const auto w = RandomVec(rows * n, rng);
  const auto x = RandomVec(n, rng);

  std::vector<double> ref(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) acc += w[r * n + j] * x[j];
    ref[r] = acc;
  }
  std::vector<double> got(rows);
  DotRows(w.data(), rows, n, x.data(), got.data());
  EXPECT_EQ(got, ref);
}

TEST(KernelsTest, DotRowsSkipZeroMatchesPerRowSkipDot) {
  stats::Rng rng(112);
  const std::size_t rows = 11, n = 77;
  const auto w = RandomVec(rows * n, rng);
  const auto x = RandomVec(n, rng, /*zero_fraction=*/0.35);

  std::vector<double> ref(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (x[j] == 0.0) continue;
      acc += x[j] * w[r * n + j];
    }
    ref[r] = acc;
  }
  std::vector<double> got(rows);
  DotRowsSkipZero(w.data(), rows, n, x.data(), got.data());
  EXPECT_EQ(got, ref);
}

TEST(KernelsTest, AddColSumsMaterializesInnerSumFirst) {
  stats::Rng rng(107);
  const std::size_t rows = 19, cols = 23;
  const auto g = RandomVec(rows * cols, rng);
  const auto y0 = RandomVec(cols, rng);

  // Reference is the legacy ColSums() + operator+= composition: the
  // column total accumulates from 0.0 and lands on y with ONE add.
  auto ref = y0;
  for (std::size_t j = 0; j < cols; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < rows; ++i) acc += g[i * cols + j];
    ref[j] += acc;
  }
  auto got = y0;
  AddColSums(g.data(), rows, cols, got.data());
  EXPECT_EQ(got, ref);
}

TEST(KernelsTest, ElementwiseMapsMatchLegacyLambdas) {
  stats::Rng rng(108);
  const std::size_t n = 71;
  auto x = RandomVec(n, rng);
  x[3] = 0.0;
  x[4] = -0.0;  // ReLU must map -0.0 exactly like the legacy ternary

  std::vector<double> got(n), ref(n);
  for (std::size_t j = 0; j < n; ++j) ref[j] = x[j] > 0.0 ? x[j] : 0.0;
  ReluInto(x.data(), got.data(), n);
  EXPECT_EQ(got, ref);

  for (std::size_t j = 0; j < n; ++j) {
    ref[j] = 1.0 / (1.0 + std::exp(-x[j]));
  }
  SigmoidInto(x.data(), got.data(), n);
  EXPECT_EQ(got, ref);

  for (std::size_t j = 0; j < n; ++j) ref[j] = std::tanh(x[j]);
  TanhInto(x.data(), got.data(), n);
  EXPECT_EQ(got, ref);
}

// Reference implementation of the pre-fusion LSTM cell: separate
// activation pass, then the cell/hidden update, exactly as the legacy
// per-gate loops wrote it.
void ReferenceLstmForward(const std::vector<double>& a, std::size_t h_dim,
                          std::vector<double>& gates, std::vector<double>& c,
                          std::vector<double>& tanh_c,
                          std::vector<double>& h) {
  const auto sigmoid = [](double z) { return 1.0 / (1.0 + std::exp(-z)); };
  for (std::size_t j = 0; j < h_dim; ++j) {
    gates[j] = sigmoid(a[j]);
    gates[h_dim + j] = sigmoid(a[h_dim + j]);
    gates[2 * h_dim + j] = std::tanh(a[2 * h_dim + j]);
    gates[3 * h_dim + j] = sigmoid(a[3 * h_dim + j]);
  }
  for (std::size_t j = 0; j < h_dim; ++j) {
    c[j] = gates[h_dim + j] * c[j] + gates[j] * gates[2 * h_dim + j];
    tanh_c[j] = std::tanh(c[j]);
    h[j] = gates[3 * h_dim + j] * tanh_c[j];
  }
}

TEST(KernelsTest, LstmCellForwardMatchesUnfusedReference) {
  stats::Rng rng(109);
  const std::size_t h_dim = 17;
  const auto a = RandomVec(4 * h_dim, rng);
  const auto c0 = RandomVec(h_dim, rng);

  std::vector<double> ref_gates(4 * h_dim), ref_tanh(h_dim),
      ref_h(h_dim), ref_c = c0;
  ReferenceLstmForward(a, h_dim, ref_gates, ref_c, ref_tanh, ref_h);

  std::vector<double> gates(4 * h_dim), tanh_c(h_dim), h(h_dim), c = c0;
  LstmCellForward(a.data(), h_dim, gates.data(), c.data(), tanh_c.data(),
                  h.data());
  EXPECT_EQ(gates, ref_gates);
  EXPECT_EQ(c, ref_c);
  EXPECT_EQ(tanh_c, ref_tanh);
  EXPECT_EQ(h, ref_h);
}

TEST(KernelsTest, LstmCellBackwardMatchesUnfusedReference) {
  stats::Rng rng(110);
  const std::size_t h_dim = 17;
  const auto dh = RandomVec(h_dim, rng);
  const auto c_prev = RandomVec(h_dim, rng);
  const auto dc0 = RandomVec(h_dim, rng);
  // Activated gates must live in (0, 1) / (-1, 1); run the forward
  // kernel to produce a consistent cache.
  const auto a = RandomVec(4 * h_dim, rng);
  std::vector<double> gates(4 * h_dim), tanh_c(h_dim), h(h_dim),
      c = c_prev;
  LstmCellForward(a.data(), h_dim, gates.data(), c.data(), tanh_c.data(),
                  h.data());

  std::vector<double> ref_da(4 * h_dim), ref_dc = dc0;
  for (std::size_t j = 0; j < h_dim; ++j) {
    const double gi = gates[j];
    const double gf = gates[h_dim + j];
    const double gg = gates[2 * h_dim + j];
    const double go = gates[3 * h_dim + j];
    const double do_j = dh[j] * tanh_c[j];
    const double dct =
        dh[j] * go * (1.0 - tanh_c[j] * tanh_c[j]) + ref_dc[j];
    const double di = dct * gg;
    const double df = dct * c_prev[j];
    const double dg = dct * gi;
    ref_da[j] = di * gi * (1.0 - gi);
    ref_da[h_dim + j] = df * gf * (1.0 - gf);
    ref_da[2 * h_dim + j] = dg * (1.0 - gg * gg);
    ref_da[3 * h_dim + j] = do_j * go * (1.0 - go);
    ref_dc[j] = dct * gf;
  }

  std::vector<double> da(4 * h_dim), dc = dc0;
  LstmCellBackward(dh.data(), gates.data(), tanh_c.data(), c_prev.data(),
                   h_dim, dc.data(), da.data());
  EXPECT_EQ(da, ref_da);
  EXPECT_EQ(dc, ref_dc);
}

}  // namespace
}  // namespace mexi::ml::kernels
