#include "serve/bundle.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/mexi.h"
#include "core/streaming.h"
#include "robust/status.h"
#include "test_fixtures.h"

namespace mexi::serve {
namespace {

namespace fs = std::filesystem;

/// Same fast training recipe as test_streaming.cc — bundle semantics are
/// shape-independent.
MexiConfig FastConfig() {
  MexiConfig config;
  config.submatcher_mode = SubmatcherMode::kNone;
  config.seq.lstm.epochs = 3;
  config.seq.lstm.hidden_dim = 8;
  config.seq.lstm.dense_dim = 8;
  config.spa.cnn.epochs = 2;
  config.spa.pretrain_images = 8;
  config.spa.pretrain_epochs = 1;
  return config;
}

class BundleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = testing::MakeSmallPoFixture(12, 47).release();
    const auto measures = ComputeAllMeasures(fixture_->input);
    const ExpertThresholds thresholds = FitThresholds(measures);
    const auto labels = LabelsFromMeasures(measures, thresholds);
    model_ = new Mexi(FastConfig());
    model_->Fit(fixture_->input.matchers, labels, fixture_->input.context);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete fixture_;
    model_ = nullptr;
    fixture_ = nullptr;
  }

  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("mexi_bundle_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string BundlePath() const { return (dir_ / "model.mxbn").string(); }

  static void FlipByte(const std::string& path, std::size_t offset) {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file) << path;
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    file.get(byte);
    file.seekp(static_cast<std::streamoff>(offset));
    file.put(static_cast<char>(byte ^ 0x01));
  }

  static testing::StudyFixture* fixture_;
  static Mexi* model_;
  fs::path dir_;
};

testing::StudyFixture* BundleTest::fixture_ = nullptr;
Mexi* BundleTest::model_ = nullptr;

/// The serve contract: a loaded bundle answers bitwise-identically to
/// the model that wrote it — labels and probabilities, EXPECT_EQ on
/// doubles, every matcher.
TEST_F(BundleTest, RoundTripIsBitwiseIdentical) {
  SaveBundle(BundlePath(), *model_);
  std::uint64_t fingerprint = 0;
  Mexi loaded = LoadBundle(BundlePath(), &fingerprint);
  EXPECT_EQ(fingerprint, model_->ConfigFingerprint());

  for (const MatcherView& view : fixture_->input.matchers) {
    const ExpertLabel want_label = model_->Characterize(view);
    const std::vector<double> want_proba = model_->CharacterizeProba(view);
    EXPECT_EQ(loaded.Characterize(view).ToVector(), want_label.ToVector());
    const std::vector<double> got_proba = loaded.CharacterizeProba(view);
    ASSERT_EQ(got_proba.size(), want_proba.size());
    for (std::size_t c = 0; c < want_proba.size(); ++c) {
      EXPECT_EQ(got_proba[c], want_proba[c]) << "label " << c;
    }
  }
}

/// A reloaded bundle streams exactly like the original — the serve
/// restart byte-identity guarantee rests on this.
TEST_F(BundleTest, RoundTripStreamsIdentically) {
  SaveBundle(BundlePath(), *model_);
  Mexi loaded = LoadBundle(BundlePath());
  const MatcherView& view = fixture_->input.matchers[0];
  auto run = [&view](Mexi& m) {
    StreamingCharacterizer stream = m.OpenStream(
        view.source_size, view.target_size, view.movement->screen_width(),
        view.movement->screen_height());
    std::vector<StreamEmission> out;
    for (std::size_t k = 0; k < view.history->size(); ++k) {
      out.push_back(stream.PushDecision(view.history->at(k)));
    }
    out.push_back(stream.Finalize());
    return out;
  };
  const auto want = run(*model_);
  const auto got = run(loaded);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t k = 0; k < want.size(); ++k) {
    EXPECT_EQ(got[k].confidence, want[k].confidence) << "emission " << k;
    ASSERT_EQ(got[k].probabilities.size(), want[k].probabilities.size());
    for (std::size_t c = 0; c < want[k].probabilities.size(); ++c) {
      EXPECT_EQ(got[k].probabilities[c], want[k].probabilities[c]);
    }
  }
}

TEST_F(BundleTest, SavingAnUnfittedModelThrowsInvalidArgument) {
  Mexi unfitted(FastConfig());
  try {
    SaveBundle(BundlePath(), unfitted);
    FAIL() << "expected StatusError";
  } catch (const robust::StatusError& e) {
    EXPECT_EQ(e.status().code(), robust::StatusCode::kInvalidArgument);
  }
  EXPECT_FALSE(fs::exists(BundlePath()));
}

TEST_F(BundleTest, MissingFileIsNotFound) {
  try {
    LoadBundle(BundlePath());
    FAIL() << "expected StatusError";
  } catch (const robust::StatusError& e) {
    EXPECT_EQ(e.status().code(), robust::StatusCode::kNotFound);
  }
}

/// Every byte of the bundle is covered by the envelope checksum: flip
/// any one and the load is rejected as corruption, never served.
TEST_F(BundleTest, SingleBitFlipAnywhereIsRejected) {
  SaveBundle(BundlePath(), *model_);
  const std::uintmax_t size = fs::file_size(BundlePath());
  ASSERT_GT(size, 64u);
  // Probe a spread of offsets: envelope header, bundle header (tag,
  // version, fingerprint live right after the 16-byte envelope), and
  // deep payload.
  const std::size_t offsets[] = {0, 4, 8, 16, 20, 24, 28,
                                 static_cast<std::size_t>(size / 2),
                                 static_cast<std::size_t>(size - 1)};
  for (const std::size_t offset : offsets) {
    SCOPED_TRACE(offset);
    SaveBundle(BundlePath(), *model_);
    FlipByte(BundlePath(), offset);
    EXPECT_THROW(LoadBundle(BundlePath()), robust::StatusError);
  }
}

}  // namespace
}  // namespace mexi::serve
