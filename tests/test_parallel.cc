// Tests of the src/parallel substrate and of the determinism contract of
// every parallelized site: an N-thread run must be bitwise identical to
// the 1-thread (exact sequential fallback) run.

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/evaluation.h"
#include "matching/similarity.h"
#include "ml/matrix.h"
#include "ml/random_forest.h"
#include "parallel/parallel_for.h"
#include "parallel/thread_pool.h"
#include "schema/generators.h"
#include "sim/study.h"
#include "stats/rng.h"
#include "test_fixtures.h"

namespace {

using namespace mexi;

/// Pins the thread count for a scope; reverts to auto on exit so the
/// rest of the suite keeps its default behavior.
struct ScopedThreads {
  explicit ScopedThreads(std::size_t n) { parallel::SetThreads(n); }
  ~ScopedThreads() { parallel::SetThreads(0); }
};

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  std::atomic<int> counter{0};
  {
    parallel::ThreadPool pool(4);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, DrainsSlowTasksOnShutdown) {
  std::atomic<int> counter{0};
  {
    parallel::ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        counter.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPoolTest, ZeroRequestedThreadsStillWorks) {
  std::atomic<int> counter{0};
  {
    parallel::ThreadPool pool(0);  // clamped to one worker
    EXPECT_EQ(pool.size(), 1u);
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelForTest, EmptyRangeCallsNothing) {
  ScopedThreads threads(8);
  std::atomic<int> calls{0};
  parallel::ParallelFor(5, 5, 1, [&](std::size_t) { calls.fetch_add(1); });
  parallel::ParallelFor(7, 3, 1, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  ScopedThreads threads(8);
  std::vector<std::atomic<int>> visits(997);
  parallel::ParallelFor(0, visits.size(), 3,
                        [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, RangeSmallerThanGrainRunsSequentially) {
  ScopedThreads threads(8);
  std::vector<int> visits(3, 0);  // unsynchronized: must stay sequential
  parallel::ParallelFor(0, visits.size(), 10,
                        [&](std::size_t i) { visits[i] += 1; });
  EXPECT_EQ(visits, (std::vector<int>{1, 1, 1}));
}

TEST(ParallelForTest, GrainZeroPicksAutomatically) {
  ScopedThreads threads(8);
  std::vector<std::atomic<int>> visits(333);
  parallel::ParallelFor(0, visits.size(), 0,
                        [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, NonZeroBeginOffsetsIndices) {
  ScopedThreads threads(8);
  std::vector<std::atomic<int>> visits(50);
  parallel::ParallelFor(10, 60, 4,
                        [&](std::size_t i) { visits[i - 10].fetch_add(1); });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, PropagatesFirstException) {
  ScopedThreads threads(8);
  EXPECT_THROW(
      parallel::ParallelFor(0, 100, 1,
                            [](std::size_t i) {
                              if (i == 37) {
                                throw std::runtime_error("boom");
                              }
                            }),
      std::runtime_error);
}

TEST(ParallelForTest, PropagatesExceptionInSequentialFallback) {
  ScopedThreads threads(1);
  EXPECT_THROW(parallel::ParallelFor(
                   0, 10, 1,
                   [](std::size_t) { throw std::invalid_argument("no"); }),
               std::invalid_argument);
}

TEST(ParallelForTest, NestedCallsRunInline) {
  ScopedThreads threads(8);
  std::vector<std::atomic<int>> visits(40 * 40);
  std::atomic<int> nested_regions{0};
  parallel::ParallelFor(0, 40, 1, [&](std::size_t i) {
    if (parallel::InParallelRegion()) nested_regions.fetch_add(1);
    // Inner site must detect the region and run sequentially inline.
    parallel::ParallelFor(0, 40, 1, [&](std::size_t j) {
      visits[i * 40 + j].fetch_add(1);
    });
  });
  for (std::size_t v = 0; v < visits.size(); ++v) {
    EXPECT_EQ(visits[v].load(), 1) << "slot " << v;
  }
  EXPECT_EQ(nested_regions.load(), 40);
}

TEST(ParallelForTest, SequentialFallbackPreservesCallOrder) {
  ScopedThreads threads(1);
  std::vector<std::size_t> order;
  parallel::ParallelFor(3, 11, 2,
                        [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{3, 4, 5, 6, 7, 8, 9, 10}));
}

TEST(ParallelMapTest, MaterializesResultsInIndexOrder) {
  ScopedThreads threads(8);
  const std::vector<int> out = parallel::ParallelMap<int>(
      2, 66, 5, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>((i + 2) * (i + 2)));
  }
}

TEST(ParallelConfigTest, EffectiveThreadsHonorsOverride) {
  parallel::SetThreads(5);
  EXPECT_EQ(parallel::EffectiveThreads(), 5u);
  parallel::SetThreads(1);
  EXPECT_EQ(parallel::EffectiveThreads(), 1u);
  parallel::SetThreads(0);  // auto
  EXPECT_GE(parallel::EffectiveThreads(), 1u);
}

// ---------------------------------------------------------------------------
// Determinism: 1-thread vs 8-thread bitwise equality of every
// parallelized site.

ml::Matrix RandomMatrix(std::size_t rows, std::size_t cols,
                        std::uint64_t seed) {
  stats::Rng rng(seed);
  return ml::Matrix::RandomGaussian(rows, cols, 1.0, rng);
}

void ExpectBitwiseEqual(const ml::Matrix& a, const ml::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]) << "flat index " << i;
  }
}

TEST(ParallelDeterminismTest, BlockedMatMulMatchesNaiveOnRaggedShapes) {
  const struct {
    std::size_t n, k, m;
  } shapes[] = {{17, 33, 7}, {64, 65, 3}, {1, 129, 130}, {96, 70, 96}};
  for (const auto& s : shapes) {
    const ml::Matrix a = RandomMatrix(s.n, s.k, 11 + s.n);
    const ml::Matrix b = RandomMatrix(s.k, s.m, 23 + s.m);
    ScopedThreads threads(8);
    ExpectBitwiseEqual(a.MatMulNaive(b), a.MatMul(b));
  }
}

TEST(ParallelDeterminismTest, MatMulThreadCountInvariant) {
  const ml::Matrix a = RandomMatrix(130, 96, 3);
  const ml::Matrix b = RandomMatrix(96, 70, 4);
  ml::Matrix sequential, parallel_result;
  {
    ScopedThreads threads(1);
    sequential = a.MatMul(b);
  }
  {
    ScopedThreads threads(8);
    parallel_result = a.MatMul(b);
  }
  ExpectBitwiseEqual(sequential, parallel_result);
}

TEST(ParallelDeterminismTest, SimilarityMatrixThreadCountInvariant) {
  const auto pair = schema::GeneratePurchaseOrderTask(77);
  matching::MatchMatrix sequential, parallel_result;
  {
    ScopedThreads threads(1);
    sequential = matching::BuildSimilarityMatrix(pair.source, pair.target);
  }
  {
    ScopedThreads threads(8);
    parallel_result =
        matching::BuildSimilarityMatrix(pair.source, pair.target);
  }
  ASSERT_EQ(sequential.source_size(), parallel_result.source_size());
  ASSERT_EQ(sequential.target_size(), parallel_result.target_size());
  for (std::size_t i = 0; i < sequential.source_size(); ++i) {
    for (std::size_t j = 0; j < sequential.target_size(); ++j) {
      EXPECT_EQ(sequential.At(i, j), parallel_result.At(i, j))
          << "entry (" << i << ", " << j << ")";
    }
  }
}

void ExpectSameHistory(const matching::DecisionHistory& a,
                       const matching::DecisionHistory& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a.at(k).source, b.at(k).source);
    EXPECT_EQ(a.at(k).target, b.at(k).target);
    EXPECT_EQ(a.at(k).confidence, b.at(k).confidence);
    EXPECT_EQ(a.at(k).timestamp, b.at(k).timestamp);
  }
}

TEST(ParallelDeterminismTest, BuildPurchaseOrderStudyThreadCountInvariant) {
  sim::StudyConfig config;
  config.num_matchers = 10;
  config.seed = 321;
  sim::Study sequential, parallel_result;
  {
    ScopedThreads threads(1);
    sequential = sim::BuildPurchaseOrderStudy(config);
  }
  {
    ScopedThreads threads(8);
    parallel_result = sim::BuildPurchaseOrderStudy(config);
  }
  ASSERT_EQ(sequential.matchers.size(), parallel_result.matchers.size());
  for (std::size_t i = 0; i < sequential.matchers.size(); ++i) {
    const auto& a = sequential.matchers[i];
    const auto& b = parallel_result.matchers[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.personal.psychometric_score, b.personal.psychometric_score);
    EXPECT_EQ(a.personal.english_level, b.personal.english_level);
    EXPECT_EQ(a.personal.domain_knowledge, b.personal.domain_knowledge);
    ExpectSameHistory(a.raw_history, b.raw_history);
    ExpectSameHistory(a.history, b.history);
    ExpectSameHistory(a.warmup_history, b.warmup_history);
    ASSERT_EQ(a.movement.size(), b.movement.size());
    for (std::size_t e = 0; e < a.movement.size(); ++e) {
      EXPECT_EQ(a.movement.events()[e].x, b.movement.events()[e].x);
      EXPECT_EQ(a.movement.events()[e].y, b.movement.events()[e].y);
      EXPECT_EQ(a.movement.events()[e].timestamp,
                b.movement.events()[e].timestamp);
    }
  }
}

TEST(ParallelDeterminismTest, RandomForestFitThreadCountInvariant) {
  stats::Rng rng(5);
  ml::Dataset data;
  for (int i = 0; i < 120; ++i) {
    std::vector<double> row;
    for (int f = 0; f < 12; ++f) row.push_back(rng.Gaussian());
    data.Add(row, row[0] + 0.3 * row[1] > 0.0 ? 1 : 0);
  }
  std::vector<std::vector<double>> probes;
  for (int i = 0; i < 25; ++i) {
    std::vector<double> row;
    for (int f = 0; f < 12; ++f) row.push_back(rng.Gaussian());
    probes.push_back(std::move(row));
  }

  ml::RandomForest sequential, parallel_result;
  {
    ScopedThreads threads(1);
    sequential.Fit(data);
  }
  {
    ScopedThreads threads(8);
    parallel_result.Fit(data);
  }
  ASSERT_EQ(sequential.NumTrees(), parallel_result.NumTrees());
  for (const auto& probe : probes) {
    EXPECT_EQ(sequential.PredictProba(probe),
              parallel_result.PredictProba(probe));
  }
}

TEST(ParallelDeterminismTest, KFoldExperimentThreadCountInvariant) {
  // Build the (deterministic) study once, outside the thread sweep.
  const auto fixture = mexi::testing::MakeSmallPoFixture(20, 99);
  std::vector<CharacterizerFactory> methods;
  methods.push_back([] { return std::make_unique<ConfCharacterizer>(); });
  methods.push_back(
      [] { return std::make_unique<RandCharacterizer>(123); });
  ExperimentConfig config;
  config.folds = 4;
  config.bootstrap_replicates = 50;

  std::vector<MethodResult> sequential, parallel_result;
  {
    ScopedThreads threads(1);
    sequential = RunKFoldExperiment(fixture->input, methods, config);
  }
  {
    ScopedThreads threads(8);
    parallel_result = RunKFoldExperiment(fixture->input, methods, config);
  }
  ASSERT_EQ(sequential.size(), parallel_result.size());
  for (std::size_t m = 0; m < sequential.size(); ++m) {
    EXPECT_EQ(sequential[m].method, parallel_result[m].method);
    EXPECT_EQ(sequential[m].a_ml, parallel_result[m].a_ml);
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(sequential[m].a_c[c], parallel_result[m].a_c[c]);
      EXPECT_EQ(sequential[m].per_matcher_correct[c],
                parallel_result[m].per_matcher_correct[c]);
    }
    EXPECT_EQ(sequential[m].per_matcher_jaccard,
              parallel_result[m].per_matcher_jaccard);
  }
}

TEST(RngForkTest, ForkIsPureAndOrderIndependent) {
  stats::Rng rng(42);
  stats::Rng forked_before = rng.Fork(7);
  rng.NextU64();
  rng.Gaussian();
  stats::Rng forked_after = rng.Fork(7);  // draws must not matter
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(forked_before.NextU64(), forked_after.NextU64());
  }
}

TEST(RngForkTest, DistinctStreamIdsGiveDistinctStreams) {
  const stats::Rng rng(42);
  stats::Rng a = rng.Fork(1);
  stats::Rng b = rng.Fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngForkTest, SubSeedMatchesLegacyOffsetDerivation) {
  // The SubSeed construction deliberately reproduces the seeds the
  // hand-rolled `seed + i` call sites used, so benchmark outputs are
  // unchanged by the migration.
  const stats::Rng rng(1000);
  EXPECT_EQ(rng.SubSeed(1), 1001u);
  EXPECT_EQ(rng.SubSeed(2), 1002u);
}

}  // namespace
