#!/usr/bin/env bash
# Fast-math predict-path parity drill.
#
# MEXI_FAST_MATH=1 may only touch inference: training stays exact by
# construction (vmath::TrainingScope), and the ULP-bounded activations
# on the predict path must not move any characterize *label* — the
# printed accuracies aggregate exactly those labels. So:
#
# 1. characterize with fast math off        -> exact.txt
# 2. characterize with MEXI_FAST_MATH=1     -> env.txt
# 3. characterize with the --fast-math flag -> flag.txt
# All three must agree line for line (semantic parity; the underlying
# probabilities may differ in the last ULPs, the labels may not).
# MEXI_FAST_MATH=0 must also be a hard off, overriding nothing.
set -u

MEXI_CLI="${MEXI_CLI:?path to the mexi_cli binary (set by ctest)}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "${WORKDIR}"' EXIT

fail() { echo "fast_math_parity: FAIL: $*" >&2; exit 1; }

DATA="${WORKDIR}/data"
"${MEXI_CLI}" simulate --out "${DATA}" --matchers 12 --seed 47 --task po \
    > "${WORKDIR}/simulate.log" || fail "simulate exited $?"
read -r ROWS COLS < <(sed -n \
    's/^rerun with: --rows \([0-9]*\) --cols \([0-9]*\)$/\1 \2/p' \
    "${WORKDIR}/simulate.log")
[ -n "${ROWS:-}" ] && [ -n "${COLS:-}" ] || fail "could not parse task dims"

CHARACTERIZE=("${MEXI_CLI}" characterize --dir "${DATA}" \
    --rows "${ROWS}" --cols "${COLS}" --folds 3)

"${CHARACTERIZE[@]}" > "${WORKDIR}/exact.txt" \
    || fail "exact run exited $?"
MEXI_FAST_MATH=1 "${CHARACTERIZE[@]}" > "${WORKDIR}/env.txt" \
    || fail "MEXI_FAST_MATH=1 run exited $?"
"${CHARACTERIZE[@]}" --fast-math > "${WORKDIR}/flag.txt" \
    || fail "--fast-math run exited $?"
MEXI_FAST_MATH=0 "${CHARACTERIZE[@]}" > "${WORKDIR}/off.txt" \
    || fail "MEXI_FAST_MATH=0 run exited $?"

diff -u "${WORKDIR}/exact.txt" "${WORKDIR}/env.txt" \
    || fail "MEXI_FAST_MATH=1 changed characterize labels"
diff -u "${WORKDIR}/exact.txt" "${WORKDIR}/flag.txt" \
    || fail "--fast-math changed characterize labels"
cmp "${WORKDIR}/exact.txt" "${WORKDIR}/off.txt" \
    || fail "MEXI_FAST_MATH=0 is not a clean off"

echo "fast_math_parity: PASS"
