#!/usr/bin/env bash
# Fast-math serve-path parity drill.
#
# Fast math (ULP-bounded SIMD transcendentals + fused products) may
# only touch inference: training stays exact by construction
# (vmath::TrainingScope), and the fast path must not move any
# characterize *label* — the printed accuracies aggregate exactly those
# labels. characterize defaults to fast math (it is the serve path), so:
#
# 1. characterize --exact-math                -> exact.txt  (baseline)
# 2. characterize (bare: fast by default)     -> fast.txt
# 3. characterize --fast-math                 -> flag.txt
# 4. MEXI_FAST_MATH=1 characterize            -> env.txt
# 5. MEXI_FAST_MATH=0 characterize            -> off.txt
# 6. characterize --batch-size 64 (fast)      -> batch64.txt
#
# exact vs fast/flag/env must agree line for line (semantic parity: the
# underlying probabilities may differ in the last ULPs, labels may not).
# off.txt must be byte-identical to exact.txt: MEXI_FAST_MATH=0 is a
# hard off that also overrides the characterize default. batch64.txt
# must be byte-identical to fast.txt — the batched engine is bitwise
# per-trace identical to the single-trace path in the same math mode —
# and line-identical to exact.txt (labels survive the fast batched
# path).
set -u

MEXI_CLI="${MEXI_CLI:?path to the mexi_cli binary (set by ctest)}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "${WORKDIR}"' EXIT

fail() { echo "fast_math_parity: FAIL: $*" >&2; exit 1; }

DATA="${WORKDIR}/data"
"${MEXI_CLI}" simulate --out "${DATA}" --matchers 12 --seed 47 --task po \
    > "${WORKDIR}/simulate.log" || fail "simulate exited $?"
read -r ROWS COLS < <(sed -n \
    's/^rerun with: --rows \([0-9]*\) --cols \([0-9]*\)$/\1 \2/p' \
    "${WORKDIR}/simulate.log")
[ -n "${ROWS:-}" ] && [ -n "${COLS:-}" ] || fail "could not parse task dims"

CHARACTERIZE=("${MEXI_CLI}" characterize --dir "${DATA}" \
    --rows "${ROWS}" --cols "${COLS}" --folds 3)

"${CHARACTERIZE[@]}" --exact-math > "${WORKDIR}/exact.txt" \
    || fail "--exact-math run exited $?"
"${CHARACTERIZE[@]}" > "${WORKDIR}/fast.txt" \
    || fail "default (fast) run exited $?"
"${CHARACTERIZE[@]}" --fast-math > "${WORKDIR}/flag.txt" \
    || fail "--fast-math run exited $?"
MEXI_FAST_MATH=1 "${CHARACTERIZE[@]}" > "${WORKDIR}/env.txt" \
    || fail "MEXI_FAST_MATH=1 run exited $?"
MEXI_FAST_MATH=0 "${CHARACTERIZE[@]}" > "${WORKDIR}/off.txt" \
    || fail "MEXI_FAST_MATH=0 run exited $?"
"${CHARACTERIZE[@]}" --batch-size 64 > "${WORKDIR}/batch64.txt" \
    || fail "--batch-size 64 run exited $?"

diff -u "${WORKDIR}/exact.txt" "${WORKDIR}/fast.txt" \
    || fail "fast-math default changed characterize labels"
diff -u "${WORKDIR}/exact.txt" "${WORKDIR}/flag.txt" \
    || fail "--fast-math changed characterize labels"
diff -u "${WORKDIR}/exact.txt" "${WORKDIR}/env.txt" \
    || fail "MEXI_FAST_MATH=1 changed characterize labels"
cmp "${WORKDIR}/exact.txt" "${WORKDIR}/off.txt" \
    || fail "MEXI_FAST_MATH=0 is not a clean off"
cmp "${WORKDIR}/fast.txt" "${WORKDIR}/batch64.txt" \
    || fail "batched path is not bitwise identical to single-trace fast"
diff -u "${WORKDIR}/exact.txt" "${WORKDIR}/batch64.txt" \
    || fail "batched fast path changed characterize labels"

echo "fast_math_parity: PASS"
