#include "core/mexi.h"

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "test_fixtures.h"

namespace mexi {
namespace {

/// Fast MExI configuration for tests: tiny networks, few epochs.
MexiConfig FastConfig(SubmatcherMode mode = SubmatcherMode::kNone) {
  MexiConfig config;
  config.submatcher_mode = mode;
  config.seq.lstm.epochs = 3;
  config.seq.lstm.hidden_dim = 8;
  config.seq.lstm.dense_dim = 8;
  config.spa.cnn.epochs = 2;
  config.spa.pretrain_images = 8;
  config.spa.pretrain_epochs = 1;
  return config;
}

class MexiTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = testing::MakeSmallPoFixture(30, 2024).release();
    // Ground-truth labels for the fixture population.
    const auto measures = ComputeAllMeasures(fixture_->input);
    const ExpertThresholds thresholds = FitThresholds(measures);
    labels_ = new std::vector<ExpertLabel>(
        LabelsFromMeasures(measures, thresholds));
  }
  static void TearDownTestSuite() {
    delete labels_;
    delete fixture_;
    labels_ = nullptr;
    fixture_ = nullptr;
  }
  static testing::StudyFixture* fixture_;
  static std::vector<ExpertLabel>* labels_;
};

testing::StudyFixture* MexiTest::fixture_ = nullptr;
std::vector<ExpertLabel>* MexiTest::labels_ = nullptr;

TEST_F(MexiTest, FitAndCharacterizeRuns) {
  Mexi mexi(FastConfig());
  mexi.Fit(fixture_->input.matchers, *labels_, fixture_->input.context);
  EXPECT_EQ(mexi.selected_models().size(), 4u);
  for (const auto& name : mexi.selected_models()) {
    EXPECT_FALSE(name.empty());
  }
  const ExpertLabel prediction =
      mexi.Characterize(fixture_->input.matchers[0]);
  (void)prediction;  // any 4-bit answer is structurally valid
  const auto probabilities =
      mexi.CharacterizeProba(fixture_->input.matchers[0]);
  ASSERT_EQ(probabilities.size(), 4u);
  for (double p : probabilities) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST_F(MexiTest, BeatsChanceOnTrainingPopulation) {
  Mexi mexi(FastConfig());
  mexi.Fit(fixture_->input.matchers, *labels_, fixture_->input.context);
  const auto predictions = mexi.CharacterizeAll(fixture_->input.matchers);
  const double a_ml = MultiLabelAccuracy(*labels_, predictions);
  EXPECT_GT(a_ml, 0.5) << "in-sample multi-label accuracy too low";
}

TEST_F(MexiTest, GuardsAgainstUseBeforeFit) {
  Mexi mexi(FastConfig());
  EXPECT_THROW(mexi.Characterize(fixture_->input.matchers[0]),
               std::logic_error);
  EXPECT_THROW(mexi.Fit({}, {}, fixture_->input.context),
               std::invalid_argument);
}

TEST_F(MexiTest, AblationFlagsControlFeatureComposition) {
  MexiConfig lrsm_only = FastConfig();
  lrsm_only.use_beh = lrsm_only.use_mou = lrsm_only.use_seq =
      lrsm_only.use_spa = lrsm_only.use_con = false;
  Mexi mexi(lrsm_only);
  mexi.Fit(fixture_->input.matchers, *labels_, fixture_->input.context);
  const auto& view = fixture_->input.matchers[0];
  const FeatureVector phi = mexi.ExtractFeatures(
      *view.history, *view.movement, view.source_size, view.target_size);
  for (const auto& name : phi.names()) {
    EXPECT_EQ(name.rfind("lrsm.", 0), 0u) << name;
  }

  MexiConfig no_lrsm = FastConfig();
  no_lrsm.use_lrsm = false;
  no_lrsm.use_seq = no_lrsm.use_spa = false;
  Mexi mexi2(no_lrsm);
  mexi2.Fit(fixture_->input.matchers, *labels_, fixture_->input.context);
  const FeatureVector phi2 = mexi2.ExtractFeatures(
      *view.history, *view.movement, view.source_size, view.target_size);
  for (const auto& name : phi2.names()) {
    EXPECT_NE(name.rfind("lrsm.", 0), 0u) << name;
  }
}

TEST_F(MexiTest, AllFlagsOffRejected) {
  MexiConfig config = FastConfig();
  config.use_lrsm = config.use_beh = config.use_mou = config.use_seq =
      config.use_spa = config.use_con = false;
  Mexi mexi(config);
  EXPECT_THROW(
      mexi.Fit(fixture_->input.matchers, *labels_, fixture_->input.context),
      std::logic_error);
}

TEST_F(MexiTest, NetworkFeaturesPresentWhenEnabled) {
  MexiConfig config = FastConfig();
  Mexi mexi(config);
  mexi.Fit(fixture_->input.matchers, *labels_, fixture_->input.context);
  const auto& view = fixture_->input.matchers[1];
  const FeatureVector phi = mexi.ExtractFeatures(
      *view.history, *view.movement, view.source_size, view.target_size);
  EXPECT_TRUE(phi.Has("seq.precise"));
  EXPECT_TRUE(phi.Has("spa.Move.precise"));
  EXPECT_TRUE(phi.Has("con.meanConsensus"));
  EXPECT_TRUE(phi.Has("beh.avgConf"));
  EXPECT_TRUE(phi.Has("mou.totalLength"));
}

TEST_F(MexiTest, PresetConfigsNamedLikeThePaper) {
  EXPECT_EQ(MexiEmptyConfig().name, "MExI_0");
  EXPECT_EQ(Mexi50Config().name, "MExI_50");
  EXPECT_EQ(Mexi70Config().name, "MExI_70");
  EXPECT_EQ(MexiEmptyConfig().submatcher_mode, SubmatcherMode::kNone);
  EXPECT_EQ(Mexi50Config().submatcher_mode, SubmatcherMode::kFixed50);
  EXPECT_EQ(Mexi70Config().submatcher_mode, SubmatcherMode::kMulti70);
}

TEST_F(MexiTest, BaselinesFitAndPredict) {
  const auto baselines = MakeAllBaselines(5);
  ASSERT_EQ(baselines.size(), 7u);
  std::vector<std::string> expected{"Rand",        "Rand_Freq", "Conf",
                                    "Qual. Test",  "Self-Assess", "LRSM",
                                    "BEH"};
  for (std::size_t b = 0; b < baselines.size(); ++b) {
    EXPECT_EQ(baselines[b]->Name(), expected[b]);
  }
  // The cheap (non-learned) baselines are fast enough to run here.
  for (std::size_t b = 0; b < 5; ++b) {
    baselines[b]->Fit(fixture_->input.matchers, *labels_,
                      fixture_->input.context);
    const auto predictions =
        baselines[b]->CharacterizeAll(fixture_->input.matchers);
    EXPECT_EQ(predictions.size(), fixture_->input.matchers.size());
  }
}

TEST_F(MexiTest, QualificationBaselinesSeparateWarmupPerformance) {
  QualTestCharacterizer qual;
  qual.Fit(fixture_->input.matchers, *labels_, fixture_->input.context);
  // Warm-up precision decides everything; verify against direct measure.
  for (const auto& view : fixture_->input.matchers) {
    const ExpertMeasures m = ComputeMeasures(
        *view.warmup_history, fixture_->input.context.warmup_source_size,
        fixture_->input.context.warmup_target_size,
        *fixture_->input.context.warmup_reference);
    const ExpertLabel label = qual.Characterize(view);
    EXPECT_EQ(label.precise, m.precision > 0.5);
    EXPECT_EQ(label.precise, label.thorough);  // uniform label
  }
}

}  // namespace
}  // namespace mexi
