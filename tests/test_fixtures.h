#ifndef MEXI_TESTS_TEST_FIXTURES_H_
#define MEXI_TESTS_TEST_FIXTURES_H_

#include <memory>

#include "core/evaluation.h"
#include "sim/study.h"

namespace mexi::testing {

/// A small simulated study bundled with the evaluation views into it.
/// Keeps the study alive for as long as the views are used.
struct StudyFixture {
  sim::Study study;
  EvaluationInput input;

  explicit StudyFixture(sim::Study s) : study(std::move(s)) {
    input.reference = &study.reference;
    input.context.source_size = study.task.source.size();
    input.context.target_size = study.task.target.size();
    input.context.warmup_source_size = study.warmup_task.source.size();
    input.context.warmup_target_size = study.warmup_task.target.size();
    input.context.warmup_reference = &study.warmup_reference;
    for (auto& matcher : study.matchers) {
      MatcherView view;
      view.history = &matcher.history;
      view.movement = &matcher.movement;
      view.warmup_history = &matcher.warmup_history;
      view.source_size = study.task.source.size();
      view.target_size = study.task.target.size();
      input.matchers.push_back(view);
    }
  }

  StudyFixture(const StudyFixture&) = delete;
  StudyFixture& operator=(const StudyFixture&) = delete;
};

inline std::unique_ptr<StudyFixture> MakeSmallPoFixture(
    std::size_t matchers = 30, std::uint64_t seed = 2024) {
  sim::StudyConfig config;
  config.num_matchers = matchers;
  config.seed = seed;
  return std::make_unique<StudyFixture>(
      sim::BuildPurchaseOrderStudy(config));
}

}  // namespace mexi::testing

#endif  // MEXI_TESTS_TEST_FIXTURES_H_
