// Property tests for the vectorized transcendental substrate
// (src/ml/vmath): ULP bounds of the fast kernels over a bit-pattern
// sweep of the exploitable input ranges, bitwise scalar/vector
// consistency, exact-mode identity with libm, TrainingScope gating, and
// the "fast math never changes a fitted model" contract.

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/mexi.h"
#include "ml/nn/lstm.h"
#include "ml/vmath/vmath.h"
#include "parallel/parallel_for.h"
#include "stats/rng.h"
#include "test_fixtures.h"

namespace mexi::ml::vmath {
namespace {

// Maps a double onto the integer number line so that adjacent
// representable values differ by exactly 1 (sign-magnitude -> biased).
std::uint64_t OrderedBits(double d) {
  const std::uint64_t u = std::bit_cast<std::uint64_t>(d);
  return (u & 0x8000000000000000ULL) ? ~u : (u | 0x8000000000000000ULL);
}

std::uint64_t UlpDistance(double a, double b) {
  const std::uint64_t ua = OrderedBits(a);
  const std::uint64_t ub = OrderedBits(b);
  return ua > ub ? ua - ub : ub - ua;
}

// Deterministic bit-pattern sweep of [0, limit]: for every biased
// exponent that can appear below the limit, a spread of mantissa
// patterns (structured extremes plus LCG-derived fills), both signs.
// This walks the full exponent range of the exploitable domain instead
// of sampling uniformly in value space, which would almost never probe
// the many tiny-exponent decades.
std::vector<double> BitPatternSweep(double limit) {
  constexpr std::uint64_t kFixed[] = {
      0x0000000000000ULL, 0xFFFFFFFFFFFFFULL, 0x8000000000000ULL,
      0x5555555555555ULL, 0xAAAAAAAAAAAAAULL & 0xFFFFFFFFFFFFFULL,
      0x0000000000001ULL, 0x7FFFFFFFFFFFFULL, 0x4000000000001ULL};
  const int max_exp = std::ilogb(limit);
  std::vector<double> out;
  std::uint64_t lcg = 0x9E3779B97F4A7C15ULL;
  for (int e = 0; e <= 1023 + max_exp; ++e) {
    const std::uint64_t base = static_cast<std::uint64_t>(e) << 52;
    for (std::uint64_t m : kFixed) {
      const double v = std::bit_cast<double>(base | m);
      if (v <= limit) {
        out.push_back(v);
        out.push_back(-v);
      }
    }
    for (int i = 0; i < 8; ++i) {
      lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
      const double v = std::bit_cast<double>(base | (lcg >> 12));
      if (v <= limit) {
        out.push_back(v);
        out.push_back(-v);
      }
    }
  }
  out.push_back(0.0);
  out.push_back(-0.0);
  out.push_back(limit);
  out.push_back(-limit);
  return out;
}

TEST(VmathUlp, ExpFastWithinBoundOverFullRange) {
  const std::vector<double> xs = BitPatternSweep(708.0);
  ASSERT_GT(xs.size(), 30000u);
  std::uint64_t worst = 0;
  for (double x : xs) {
    const std::uint64_t d = UlpDistance(ExpFast(x), std::exp(x));
    if (d > worst) worst = d;
    ASSERT_LE(d, static_cast<std::uint64_t>(kExpFastMaxUlp))
        << "x=" << x << " fast=" << ExpFast(x) << " libm=" << std::exp(x);
  }
  // The documented bound must stay honest: if the kernel improves, the
  // constant (and this expectation) should be tightened, not left slack.
  EXPECT_GT(worst, 0u);
}

TEST(VmathUlp, TanhFastWithinBoundOverFullRange) {
  const std::vector<double> xs = BitPatternSweep(19.0625);
  for (double x : xs) {
    const std::uint64_t d = UlpDistance(TanhFast(x), std::tanh(x));
    ASSERT_LE(d, static_cast<std::uint64_t>(kTanhFastMaxUlp))
        << "x=" << x << " fast=" << TanhFast(x)
        << " libm=" << std::tanh(x);
  }
}

TEST(VmathUlp, SigmoidFastWithinBoundOverFullRange) {
  const std::vector<double> xs = BitPatternSweep(708.0);
  for (double x : xs) {
    const double exact = 1.0 / (1.0 + std::exp(-x));
    const std::uint64_t d = UlpDistance(SigmoidFast(x), exact);
    ASSERT_LE(d, static_cast<std::uint64_t>(kSigmoidFastMaxUlp))
        << "x=" << x << " fast=" << SigmoidFast(x) << " exact=" << exact;
  }
}

TEST(VmathUlp, TanhSaturatesExactlyWhereLibmDoes) {
  for (double x : {19.0625, 20.0, 100.0, 708.0, 1e300}) {
    EXPECT_EQ(TanhFast(x), 1.0);
    EXPECT_EQ(TanhFast(-x), -1.0);
    // The saturation threshold is only legal because libm already
    // rounds to exactly +-1 there.
    if (x <= 708.0) {
      EXPECT_EQ(std::tanh(x), 1.0) << x;
      EXPECT_EQ(std::tanh(-x), -1.0) << x;
    }
  }
}

TEST(VmathSpecial, NanPropagatesAndInfSaturates) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(std::isnan(ExpFast(nan)));
  EXPECT_TRUE(std::isnan(TanhFast(nan)));
  EXPECT_TRUE(std::isnan(SigmoidFast(nan)));
  // The vector path must agree on NaN lanes too.
  double x[5] = {nan, 1.0, nan, -2.0, nan};
  double y[5];
  VTanhFast(x, y, 5);
  EXPECT_TRUE(std::isnan(y[0]) && std::isnan(y[2]) && std::isnan(y[4]));
  EXPECT_EQ(y[1], TanhFast(1.0));
  EXPECT_EQ(y[3], TanhFast(-2.0));
  // Infinities clamp/saturate instead of producing inf or 0/0.
  EXPECT_EQ(ExpFast(inf), ExpFast(708.0));
  EXPECT_EQ(ExpFast(-inf), ExpFast(-708.0));
  EXPECT_EQ(TanhFast(inf), 1.0);
  EXPECT_EQ(TanhFast(-inf), -1.0);
  EXPECT_GT(SigmoidFast(inf), 1.0 - 1e-15);
  EXPECT_LT(SigmoidFast(-inf), 1e-15);
  // Exactly 0.5 at zero: downstream label thresholds sit at 0.5, so
  // this is a semantic requirement, not cosmetics.
  EXPECT_EQ(SigmoidFast(0.0), 0.5);
  EXPECT_EQ(SigmoidFast(-0.0), 0.5);
}

// Scalar helpers and the AVX2 span bodies must produce the same bits,
// so a value's result cannot depend on its position, the span length,
// or which side of the 4-wide tail boundary it lands on.
TEST(VmathConsistency, ScalarAndVectorBitwiseIdentical) {
  stats::Rng rng(77);
  std::vector<double> x(1037);
  for (auto& v : x) v = rng.Uniform(-25.0, 25.0);
  x[0] = 0.0;
  x[1] = -0.0;
  x[2] = 1e-300;
  x[3] = 708.0;
  x[4] = -708.0;
  x[5] = 19.0625;
  for (std::size_t offset : {0u, 1u, 2u, 3u, 5u}) {
    for (std::size_t len : {0u, 1u, 3u, 4u, 7u, 64u, 1000u}) {
      if (offset + len > x.size()) continue;
      std::vector<double> y(len);
      VExpFast(x.data() + offset, y.data(), len);
      for (std::size_t j = 0; j < len; ++j) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(y[j]),
                  std::bit_cast<std::uint64_t>(ExpFast(x[offset + j])));
      }
      VTanhFast(x.data() + offset, y.data(), len);
      for (std::size_t j = 0; j < len; ++j) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(y[j]),
                  std::bit_cast<std::uint64_t>(TanhFast(x[offset + j])));
      }
      VSigmoidFast(x.data() + offset, y.data(), len);
      for (std::size_t j = 0; j < len; ++j) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(y[j]),
                  std::bit_cast<std::uint64_t>(SigmoidFast(x[offset + j])));
      }
    }
  }
}

TEST(VmathConsistency, InPlaceMatchesOutOfPlace) {
  stats::Rng rng(78);
  std::vector<double> x(129);
  for (auto& v : x) v = rng.Uniform(-10.0, 10.0);
  std::vector<double> expect(x.size());
  VTanhFast(x.data(), expect.data(), x.size());
  std::vector<double> inplace = x;
  VTanhFast(inplace.data(), inplace.data(), inplace.size());
  EXPECT_EQ(std::memcmp(inplace.data(), expect.data(),
                        x.size() * sizeof(double)),
            0);
}

// Exact mode is the contract the whole training stack stands on: it IS
// the scalar libm loop, bit for bit.
TEST(VmathConsistency, ExactModeIsLibmBitwise) {
  stats::Rng rng(79);
  std::vector<double> x(517);
  for (auto& v : x) v = rng.Uniform(-30.0, 30.0);
  std::vector<double> y(x.size());
  VExp(x.data(), y.data(), x.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(y[j]),
              std::bit_cast<std::uint64_t>(std::exp(x[j])));
  }
  VTanh(x.data(), y.data(), x.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(y[j]),
              std::bit_cast<std::uint64_t>(std::tanh(x[j])));
  }
  VSigmoid(x.data(), y.data(), x.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(y[j]),
              std::bit_cast<std::uint64_t>(1.0 / (1.0 + std::exp(-x[j]))));
  }
}

class FastMathFlagTest : public ::testing::Test {
 protected:
  void TearDown() override { SetFastMath(false); }
};

TEST_F(FastMathFlagTest, TrainingScopeSuppressesFastMode) {
  SetFastMath(true);
  EXPECT_TRUE(FastMathEnabled());
  EXPECT_TRUE(FastMathActive());
  {
    TrainingScope outer;
    EXPECT_TRUE(FastMathEnabled());  // the request survives...
    EXPECT_FALSE(FastMathActive());  // ...but cannot take effect
    {
      TrainingScope inner;  // nesting (sub-model training) stays exact
      EXPECT_FALSE(FastMathActive());
    }
    EXPECT_FALSE(FastMathActive());
    // The dispatchers are what call sites consume: inside a scope they
    // must return the libm bits even with the flag on.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ExpInfer(0.73)),
              std::bit_cast<std::uint64_t>(std::exp(0.73)));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(TanhInfer(-1.41)),
              std::bit_cast<std::uint64_t>(std::tanh(-1.41)));
  }
  EXPECT_TRUE(FastMathActive());  // scope exit restores the request
  SetFastMath(false);
  EXPECT_FALSE(FastMathActive());
}

// The teeth behind "MEXI_FAST_MATH never changes a fitted model": train
// the LSTM twice from the same seed, flag off vs flag on, and require
// bitwise-identical behavior (losses and exact-mode predictions).
TEST_F(FastMathFlagTest, FitIsBitwiseInertToFastMathFlag) {
  LstmSequenceModel::Config config;
  config.input_dim = 3;
  config.hidden_dim = 8;
  config.dense_dim = 8;
  config.num_labels = 2;
  config.epochs = 2;
  config.seed = 5;
  stats::Rng rng(55);
  std::vector<Sequence> sequences;
  std::vector<std::vector<double>> targets;
  for (int i = 0; i < 6; ++i) {
    Sequence seq;
    for (int t = 0; t < 12; ++t) {
      seq.push_back({rng.Uniform(), rng.Gaussian(), rng.Uniform()});
    }
    sequences.push_back(std::move(seq));
    targets.push_back({rng.Bernoulli(0.5) ? 1.0 : 0.0, 1.0});
  }

  SetFastMath(false);
  LstmSequenceModel exact_model(config);
  const double exact_loss = exact_model.Fit(sequences, targets);
  std::vector<std::vector<double>> exact_preds;
  for (const auto& seq : sequences) {
    exact_preds.push_back(exact_model.Predict(seq));
  }

  SetFastMath(true);  // flag is live for the WHOLE Fit call below
  LstmSequenceModel flagged_model(config);
  const double flagged_loss = flagged_model.Fit(sequences, targets);
  SetFastMath(false);  // predict exactly, to compare model weights
  std::vector<std::vector<double>> flagged_preds;
  for (const auto& seq : sequences) {
    flagged_preds.push_back(flagged_model.Predict(seq));
  }

  EXPECT_EQ(std::bit_cast<std::uint64_t>(exact_loss),
            std::bit_cast<std::uint64_t>(flagged_loss));
  ASSERT_EQ(exact_preds.size(), flagged_preds.size());
  for (std::size_t i = 0; i < exact_preds.size(); ++i) {
    ASSERT_EQ(exact_preds[i].size(), flagged_preds[i].size());
    for (std::size_t j = 0; j < exact_preds[i].size(); ++j) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(exact_preds[i][j]),
                std::bit_cast<std::uint64_t>(flagged_preds[i][j]))
          << "sequence " << i << " label " << j;
    }
  }

  // Fast-mode inference on the identically-trained model must stay
  // semantically equivalent (ULP-level activation error does not move
  // probabilities materially).
  SetFastMath(true);
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    const std::vector<double> fast = flagged_model.Predict(sequences[i]);
    for (std::size_t j = 0; j < fast.size(); ++j) {
      EXPECT_NEAR(fast[j], exact_preds[i][j], 1e-9);
    }
  }
}

}  // namespace
}  // namespace mexi::ml::vmath

namespace mexi {
namespace {

/// FNV-1a over the raw bytes of each double (same scheme as
/// tests/test_golden_nn.cc).
std::uint64_t Fnv1a64(const std::vector<double>& values) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (double v : values) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
    for (int b = 0; b < 8; ++b) {
      hash ^= (bits >> (8 * b)) & 0xffULL;
      hash *= 0x100000001b3ULL;
    }
  }
  return hash;
}

// End-to-end thread-count invariance: the exact-mode substrate and the
// reordered LSTM gradient loops must hash identically whether MExI
// trains on 1 thread or 8. This is the cross-thread face of the golden
// hashes in test_golden_nn.cc.
TEST(VmathThreads, MexiTrainHashIdenticalAt1And8Threads) {
  const auto fixture = testing::MakeSmallPoFixture(12, 411);
  const auto measures = ComputeAllMeasures(fixture->input);
  const ExpertThresholds thresholds = FitThresholds(measures);
  const std::vector<ExpertLabel> labels =
      LabelsFromMeasures(measures, thresholds);

  MexiConfig config;
  config.seq.lstm.epochs = 2;
  config.seq.lstm.hidden_dim = 8;
  config.seq.lstm.dense_dim = 8;
  config.spa.cnn.epochs = 1;
  config.spa.pretrain_images = 4;
  config.spa.pretrain_epochs = 1;

  std::vector<std::uint64_t> hashes;
  for (std::size_t threads : {1u, 8u}) {
    parallel::SetThreads(threads);
    Mexi mexi(config);
    mexi.Fit(fixture->input.matchers, labels, fixture->input.context);
    std::vector<double> flat;
    for (const auto& matcher : fixture->input.matchers) {
      for (double p : mexi.CharacterizeProba(matcher)) flat.push_back(p);
    }
    hashes.push_back(Fnv1a64(flat));
  }
  parallel::SetThreads(0);
  EXPECT_EQ(hashes[0], hashes[1]);
}

}  // namespace
}  // namespace mexi
