#include "stats/descriptive.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mexi::stats {
namespace {

TEST(DescriptiveTest, MeanAndSum) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_DOUBLE_EQ(Sum({1.0, 2.0, 3.0}), 6.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(DescriptiveTest, VarianceAndStdDev) {
  const std::vector<double> values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Variance(values), 4.0);
  EXPECT_DOUBLE_EQ(StdDev(values), 2.0);
  EXPECT_NEAR(SampleVariance(values), 4.0 * 8.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(SampleVariance({5.0}), 0.0);
}

TEST(DescriptiveTest, MinMaxMedian) {
  const std::vector<double> values{3.0, 1.0, 4.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(Min(values), 1.0);
  EXPECT_DOUBLE_EQ(Max(values), 5.0);
  EXPECT_DOUBLE_EQ(Median(values), 3.0);
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(DescriptiveTest, PercentileLinearInterpolation) {
  const std::vector<double> values{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50.0), 25.0);
  // 80th percentile: rank 2.4 -> 30 * 0.6 + 40 * 0.4 = 34.
  EXPECT_NEAR(Percentile(values, 80.0), 34.0, 1e-12);
  EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0);
}

TEST(DescriptiveTest, PercentileUnsortedInput) {
  EXPECT_DOUBLE_EQ(Percentile({40.0, 10.0, 30.0, 20.0}, 50.0), 25.0);
}

TEST(DescriptiveTest, SkewnessSigns) {
  EXPECT_GT(Skewness({1.0, 1.0, 1.0, 1.0, 10.0}), 0.0);
  EXPECT_LT(Skewness({-10.0, 1.0, 1.0, 1.0, 1.0}), 0.0);
  EXPECT_NEAR(Skewness({1.0, 2.0, 3.0}), 0.0, 1e-12);
}

TEST(DescriptiveTest, KurtosisOfUniformIsNegative) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(static_cast<double>(i));
  EXPECT_LT(Kurtosis(values), 0.0);
}

TEST(DescriptiveTest, EntropyUniformIsLogN) {
  EXPECT_NEAR(Entropy({1.0, 1.0, 1.0, 1.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(Entropy({1.0}), 0.0);
  EXPECT_DOUBLE_EQ(Entropy({}), 0.0);
  EXPECT_DOUBLE_EQ(Entropy({0.0, 0.0}), 0.0);
}

TEST(DescriptiveTest, EntropyIgnoresNegativeWeights) {
  EXPECT_NEAR(Entropy({1.0, 1.0, -5.0}), 1.0, 1e-12);
}

TEST(DescriptiveTest, NormalCdf) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
}

TEST(DescriptiveTest, TwoSidedPValue) {
  EXPECT_NEAR(TwoSidedPValue(0.0), 1.0, 1e-12);
  EXPECT_NEAR(TwoSidedPValue(1.96), 0.05, 1e-3);
  EXPECT_NEAR(TwoSidedPValue(-1.96), 0.05, 1e-3);
}

TEST(DescriptiveTest, Clamp) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

}  // namespace
}  // namespace mexi::stats
