#!/usr/bin/env bash
# Process-level kill-and-resume drill for the checkpoint substrate.
#
# 1. Simulate a small study and run `characterize` uninterrupted.
# 2. Re-run with MEXI_FAULTS=kill@fold:2 — the process _Exit(137)s after
#    the second fold commits its checkpoint, a real mid-run death.
# 3. Re-run with --resume: finished folds load from the checkpoint
#    directory, the rest are computed.
# The resumed run's stdout must be byte-identical to the uninterrupted
# run's. MEXI_THREADS=1 pins the kill to a deterministic fold; the final
# results are thread-count independent regardless.
set -u

MEXI_CLI="${MEXI_CLI:?path to the mexi_cli binary (set by ctest)}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "${WORKDIR}"' EXIT

fail() { echo "chaos_resume: FAIL: $*" >&2; exit 1; }

DATA="${WORKDIR}/data"
"${MEXI_CLI}" simulate --out "${DATA}" --matchers 12 --seed 99 --task po \
    > "${WORKDIR}/simulate.log" || fail "simulate exited $?"
# simulate prints "rerun with: --rows N --cols M"
read -r ROWS COLS < <(sed -n \
    's/^rerun with: --rows \([0-9]*\) --cols \([0-9]*\)$/\1 \2/p' \
    "${WORKDIR}/simulate.log")
[ -n "${ROWS:-}" ] && [ -n "${COLS:-}" ] || fail "could not parse task dims"

CHARACTERIZE=("${MEXI_CLI}" characterize --dir "${DATA}" \
    --rows "${ROWS}" --cols "${COLS}" --folds 3)

# Reference: uninterrupted, no checkpoints involved.
MEXI_THREADS=1 "${CHARACTERIZE[@]}" > "${WORKDIR}/expected.txt" \
    || fail "uninterrupted run exited $?"

# Killed run: _Exit(137) fires after the second computed fold. Metrics
# are armed so the injector's observability contract is on trial too:
# Hit() flushes the fault.injected event BEFORE the death, so the trace
# must survive in metrics.jsonl even though Shutdown never runs.
CKPT="${WORKDIR}/ckpt"
KILLED_OBS="${WORKDIR}/obs_killed"
MEXI_THREADS=1 MEXI_FAULTS=kill@fold:2 \
    "${CHARACTERIZE[@]}" --checkpoint-dir "${CKPT}" \
    --metrics-out "${KILLED_OBS}" \
    > "${WORKDIR}/killed.txt" 2>&1
STATUS=$?
[ "${STATUS}" -eq 137 ] || fail "expected exit 137 from the kill, got ${STATUS}"
ls "${CKPT}"/fold_*.bin > /dev/null 2>&1 \
    || fail "killed run left no fold checkpoints behind"

KILLED_JSONL="${KILLED_OBS}/metrics.jsonl"
[ -s "${KILLED_JSONL}" ] || fail "killed run left no metrics.jsonl"
grep -q '"name": "fault.injected"' "${KILLED_JSONL}" \
    || fail "fault.injected event did not survive the kill"
grep '"name": "fault.injected"' "${KILLED_JSONL}" \
    | grep -q '"kind": "kill"' \
    || fail "fault.injected event lacks kind=kill"
grep '"name": "fault.injected"' "${KILLED_JSONL}" \
    | grep -q '"site": "fold"' \
    || fail "fault.injected event lacks site=fold"

# Surviving-process injection: an EINTR fault in the CSV reader must
# surface as a structured error (nonzero exit, no crash), and because
# the CLI reaches Shutdown, the faults.injected.* counter snapshot must
# land in metrics.jsonl.
EINTR_OBS="${WORKDIR}/obs_eintr"
MEXI_THREADS=1 MEXI_FAULTS=eintr@io_read:2 \
    "${CHARACTERIZE[@]}" --metrics-out "${EINTR_OBS}" \
    > "${WORKDIR}/eintr.txt" 2> "${WORKDIR}/eintr.err"
STATUS=$?
[ "${STATUS}" -eq 1 ] || fail "expected structured exit 1 from EINTR, got ${STATUS}"
grep -q "EINTR" "${WORKDIR}/eintr.err" \
    || fail "EINTR fault did not surface in the error message"
EINTR_JSONL="${EINTR_OBS}/metrics.jsonl"
[ -s "${EINTR_JSONL}" ] || fail "EINTR run left no metrics.jsonl"
grep -q '"name": "faults.injected.io_read", "value": 1' "${EINTR_JSONL}" \
    || fail "faults.injected.io_read counter missing from snapshot"

# Resume: must complete and reproduce the reference byte for byte.
MEXI_THREADS=1 "${CHARACTERIZE[@]}" --checkpoint-dir "${CKPT}" --resume \
    > "${WORKDIR}/actual.txt" || fail "resumed run exited $?"
diff -u "${WORKDIR}/expected.txt" "${WORKDIR}/actual.txt" \
    || fail "resumed output differs from uninterrupted output"

# Sanity: without --resume the same directory is treated as a fresh run
# (checkpoints discarded, then recomputed) — output still identical.
MEXI_THREADS=1 "${CHARACTERIZE[@]}" --checkpoint-dir "${CKPT}" \
    > "${WORKDIR}/fresh.txt" || fail "fresh checkpointed run exited $?"
diff -u "${WORKDIR}/expected.txt" "${WORKDIR}/fresh.txt" \
    || fail "fresh checkpointed output differs"

echo "chaos_resume: PASS"
