#!/usr/bin/env bash
# Process-level kill-and-resume drill for the checkpoint substrate.
#
# 1. Simulate a small study and run `characterize` uninterrupted.
# 2. Re-run with MEXI_FAULTS=kill@fold:2 — the process _Exit(137)s after
#    the second fold commits its checkpoint, a real mid-run death.
# 3. Re-run with --resume: finished folds load from the checkpoint
#    directory, the rest are computed.
# The resumed run's stdout must be byte-identical to the uninterrupted
# run's. MEXI_THREADS=1 pins the kill to a deterministic fold; the final
# results are thread-count independent regardless.
set -u

MEXI_CLI="${MEXI_CLI:?path to the mexi_cli binary (set by ctest)}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "${WORKDIR}"' EXIT

fail() { echo "chaos_resume: FAIL: $*" >&2; exit 1; }

DATA="${WORKDIR}/data"
"${MEXI_CLI}" simulate --out "${DATA}" --matchers 12 --seed 99 --task po \
    > "${WORKDIR}/simulate.log" || fail "simulate exited $?"
# simulate prints "rerun with: --rows N --cols M"
read -r ROWS COLS < <(sed -n \
    's/^rerun with: --rows \([0-9]*\) --cols \([0-9]*\)$/\1 \2/p' \
    "${WORKDIR}/simulate.log")
[ -n "${ROWS:-}" ] && [ -n "${COLS:-}" ] || fail "could not parse task dims"

CHARACTERIZE=("${MEXI_CLI}" characterize --dir "${DATA}" \
    --rows "${ROWS}" --cols "${COLS}" --folds 3)

# Reference: uninterrupted, no checkpoints involved.
MEXI_THREADS=1 "${CHARACTERIZE[@]}" > "${WORKDIR}/expected.txt" \
    || fail "uninterrupted run exited $?"

# Killed run: _Exit(137) fires after the second computed fold.
CKPT="${WORKDIR}/ckpt"
MEXI_THREADS=1 MEXI_FAULTS=kill@fold:2 \
    "${CHARACTERIZE[@]}" --checkpoint-dir "${CKPT}" \
    > "${WORKDIR}/killed.txt" 2>&1
STATUS=$?
[ "${STATUS}" -eq 137 ] || fail "expected exit 137 from the kill, got ${STATUS}"
ls "${CKPT}"/fold_*.bin > /dev/null 2>&1 \
    || fail "killed run left no fold checkpoints behind"

# Resume: must complete and reproduce the reference byte for byte.
MEXI_THREADS=1 "${CHARACTERIZE[@]}" --checkpoint-dir "${CKPT}" --resume \
    > "${WORKDIR}/actual.txt" || fail "resumed run exited $?"
diff -u "${WORKDIR}/expected.txt" "${WORKDIR}/actual.txt" \
    || fail "resumed output differs from uninterrupted output"

# Sanity: without --resume the same directory is treated as a fresh run
# (checkpoints discarded, then recomputed) — output still identical.
MEXI_THREADS=1 "${CHARACTERIZE[@]}" --checkpoint-dir "${CKPT}" \
    > "${WORKDIR}/fresh.txt" || fail "fresh checkpointed run exited $?"
diff -u "${WORKDIR}/expected.txt" "${WORKDIR}/fresh.txt" \
    || fail "fresh checkpointed output differs"

echo "chaos_resume: PASS"
