#include "ml/regression.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/mexi_regressor.h"
#include "test_fixtures.h"

namespace mexi::ml {
namespace {

/// y = 3 x0 - 2 x1 + 1 + noise.
void LinearData(std::size_t n, double noise, std::uint64_t seed,
                std::vector<std::vector<double>>* rows,
                std::vector<double>* targets) {
  stats::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.Gaussian();
    const double x1 = rng.Gaussian();
    rows->push_back({x0, x1, rng.Gaussian()});
    targets->push_back(3.0 * x0 - 2.0 * x1 + 1.0 +
                       rng.Gaussian(0.0, noise));
  }
}

class RegressorZooTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<Regressor> Make() const {
    switch (GetParam()) {
      case 0:
        return std::make_unique<RidgeRegression>();
      case 1:
        return std::make_unique<RandomForestRegressor>();
      default:
        return std::make_unique<KnnRegressor>();
    }
  }
};

TEST_P(RegressorZooTest, FitsLinearSignal) {
  std::vector<std::vector<double>> rows, test_rows;
  std::vector<double> targets, test_targets;
  LinearData(300, 0.1, 21, &rows, &targets);
  LinearData(100, 0.1, 22, &test_rows, &test_targets);
  auto model = Make();
  model->Fit(rows, targets);
  const double mae =
      MeanAbsoluteError(test_targets, model->PredictAll(test_rows));
  // Baseline: predicting the mean has MAE ~ E|y - mean| ~ 2.9.
  EXPECT_LT(mae, 1.2) << model->Name();
}

TEST_P(RegressorZooTest, GuardsAndClone) {
  auto model = Make();
  EXPECT_THROW(model->Predict({1.0, 2.0, 3.0}), std::logic_error);
  EXPECT_THROW(model->Fit({}, {}), std::invalid_argument);
  EXPECT_THROW(model->Fit({{1.0}}, {1.0, 2.0}), std::invalid_argument);
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  LinearData(20, 0.1, 23, &rows, &targets);
  model->Fit(rows, targets);
  auto clone = model->Clone();
  EXPECT_FALSE(clone->fitted());
  EXPECT_EQ(clone->Name(), model->Name());
}

INSTANTIATE_TEST_SUITE_P(AllRegressors, RegressorZooTest,
                         ::testing::Range(0, 3));

TEST(RidgeRegressionTest, RecoversCoefficients) {
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  LinearData(500, 0.01, 24, &rows, &targets);
  RidgeRegression::Config config;
  config.lambda = 1e-3;
  RidgeRegression ridge(config);
  ridge.Fit(rows, targets);
  // Weights live in z-scored space; x0/x1 have unit-ish scale, so the
  // standardized weights approximate the raw coefficients.
  EXPECT_NEAR(ridge.weights()[0], 3.0, 0.25);
  EXPECT_NEAR(ridge.weights()[1], -2.0, 0.25);
  EXPECT_NEAR(std::fabs(ridge.weights()[2]), 0.0, 0.1);
  EXPECT_NEAR(ridge.intercept(), 1.0, 0.3);
}

TEST(RegressionMetricsTest, KnownValues) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1.0, 2.0}, {2.0, 0.0}), 1.5);
  EXPECT_DOUBLE_EQ(RootMeanSquaredError({0.0, 0.0}, {3.0, 4.0}),
                   std::sqrt(12.5));
  EXPECT_THROW(MeanAbsoluteError({1.0}, {}), std::invalid_argument);
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({}, {}), 0.0);
}

TEST(MexiRegressorTest, EstimatesBeatMeanBaseline) {
  const auto fixture = mexi::testing::MakeSmallPoFixture(40, 2027);
  const auto measures = ComputeAllMeasures(fixture->input);

  // Split even/odd.
  std::vector<MatcherView> train_views, test_views;
  std::vector<ExpertMeasures> train_measures, test_measures;
  for (std::size_t i = 0; i < fixture->input.matchers.size(); ++i) {
    if (i % 2 == 0) {
      train_views.push_back(fixture->input.matchers[i]);
      train_measures.push_back(measures[i]);
    } else {
      test_views.push_back(fixture->input.matchers[i]);
      test_measures.push_back(measures[i]);
    }
  }
  MexiRegressor regressor;
  regressor.Fit(train_views, train_measures, fixture->input.context);
  EXPECT_EQ(regressor.selected_models().size(), 4u);

  double mean_p = 0.0;
  for (const auto& m : train_measures) mean_p += m.precision;
  mean_p /= static_cast<double>(train_measures.size());

  std::vector<double> truth, predicted, baseline;
  for (std::size_t i = 0; i < test_views.size(); ++i) {
    truth.push_back(test_measures[i].precision);
    predicted.push_back(regressor.Estimate(test_views[i]).precision);
    baseline.push_back(mean_p);
  }
  EXPECT_LT(MeanAbsoluteError(truth, predicted),
            MeanAbsoluteError(truth, baseline));
}

TEST(MexiRegressorTest, Guards) {
  MexiRegressor regressor;
  const auto fixture = mexi::testing::MakeSmallPoFixture(10, 2028);
  EXPECT_THROW(regressor.Estimate(fixture->input.matchers[0]),
               std::logic_error);
  EXPECT_THROW(regressor.Fit({}, {}, fixture->input.context),
               std::invalid_argument);
}

}  // namespace
}  // namespace mexi::ml
