#include "matching/movement.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mexi::matching {
namespace {

MovementMap SmallMap() {
  MovementMap map(100.0, 100.0);
  map.Add({10.0, 10.0, MovementType::kMove, 1.0});
  map.Add({10.0, 20.0, MovementType::kScroll, 2.0});
  map.Add({40.0, 60.0, MovementType::kLeftClick, 3.0});
  map.Add({90.0, 90.0, MovementType::kMove, 5.0});
  return map;
}

TEST(MovementMapTest, ConstructionValidation) {
  EXPECT_THROW(MovementMap(0.0, 100.0), std::invalid_argument);
  EXPECT_THROW(MovementMap(100.0, -1.0), std::invalid_argument);
}

TEST(MovementMapTest, TimestampsMonotonic) {
  MovementMap map(10.0, 10.0);
  map.Add({1.0, 1.0, MovementType::kMove, 5.0});
  EXPECT_THROW(map.Add({1.0, 1.0, MovementType::kMove, 4.0}),
               std::invalid_argument);
}

TEST(MovementMapTest, PositionsClampedToScreen) {
  MovementMap map(10.0, 10.0);
  map.Add({-5.0, 50.0, MovementType::kMove, 1.0});
  EXPECT_DOUBLE_EQ(map.events()[0].x, 0.0);
  EXPECT_DOUBLE_EQ(map.events()[0].y, 10.0);
}

TEST(MovementMapTest, CountsAndFilters) {
  const MovementMap map = SmallMap();
  EXPECT_EQ(map.CountOfType(MovementType::kMove), 2u);
  EXPECT_EQ(map.CountOfType(MovementType::kScroll), 1u);
  EXPECT_EQ(map.CountOfType(MovementType::kRightClick), 0u);
  EXPECT_EQ(map.EventsOfType(MovementType::kMove).size(), 2u);
}

TEST(MovementMapTest, PathLengthAndTime) {
  const MovementMap map = SmallMap();
  const double expected = 10.0 + std::sqrt(30.0 * 30.0 + 40.0 * 40.0) +
                          std::sqrt(50.0 * 50.0 + 30.0 * 30.0);
  EXPECT_NEAR(map.TotalPathLength(), expected, 1e-9);
  EXPECT_DOUBLE_EQ(map.TotalTime(), 4.0);
  EXPECT_DOUBLE_EQ(MovementMap(10, 10).TotalTime(), 0.0);
}

TEST(MovementMapTest, MeanPosition) {
  const MovementMap map = SmallMap();
  EXPECT_DOUBLE_EQ(map.MeanX(), (10.0 + 10.0 + 40.0 + 90.0) / 4.0);
  EXPECT_DOUBLE_EQ(map.MeanY(), (10.0 + 20.0 + 60.0 + 90.0) / 4.0);
}

TEST(HeatMapTest, BinsAndNormalizes) {
  MovementMap map(100.0, 100.0);
  // Three moves in the top-left cell, one in the bottom-right.
  map.Add({5.0, 5.0, MovementType::kMove, 1.0});
  map.Add({6.0, 6.0, MovementType::kMove, 2.0});
  map.Add({7.0, 7.0, MovementType::kMove, 3.0});
  map.Add({95.0, 95.0, MovementType::kMove, 4.0});
  const ml::Matrix heat = map.HeatMap(MovementType::kMove, 2, 2);
  EXPECT_DOUBLE_EQ(heat(0, 0), 1.0);          // peak normalized to 1
  EXPECT_NEAR(heat(1, 1), 1.0 / 3.0, 1e-12);  // one hit / peak of 3
  EXPECT_DOUBLE_EQ(heat(0, 1), 0.0);
}

TEST(HeatMapTest, TypeSeparationAndEmpty) {
  const MovementMap map = SmallMap();
  const ml::Matrix scroll_heat = map.HeatMap(MovementType::kScroll, 4, 4);
  double total = 0.0;
  for (double v : scroll_heat.data()) total += v;
  EXPECT_DOUBLE_EQ(total, 1.0);  // exactly one scroll cell
  const ml::Matrix right_heat = map.HeatMap(MovementType::kRightClick, 4, 4);
  EXPECT_DOUBLE_EQ(right_heat.MaxAbs(), 0.0);
  EXPECT_THROW(map.HeatMap(MovementType::kMove, 0, 4),
               std::invalid_argument);
}

TEST(HeatMapTest, EdgePositionsLandInLastBin) {
  MovementMap map(100.0, 100.0);
  map.Add({100.0, 100.0, MovementType::kMove, 1.0});
  const ml::Matrix heat = map.HeatMap(MovementType::kMove, 3, 3);
  EXPECT_DOUBLE_EQ(heat(2, 2), 1.0);
}

TEST(TimeSliceTest, KeepsOnlyEventsInRange) {
  const MovementMap map = SmallMap();
  const MovementMap slice = map.TimeSlice(2.0, 3.5);
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_DOUBLE_EQ(slice.events()[0].timestamp, 2.0);
  EXPECT_DOUBLE_EQ(slice.events()[1].timestamp, 3.0);
  EXPECT_DOUBLE_EQ(slice.screen_width(), map.screen_width());
  EXPECT_TRUE(map.TimeSlice(10.0, 20.0).empty());
}

}  // namespace
}  // namespace mexi::matching
