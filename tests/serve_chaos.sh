#!/usr/bin/env bash
# Serving chaos drill: the mexi_serve robustness contract end to end.
#
#   1. conn_reset injected at net_write: the client's first response is
#      torn away mid-write; the retrying bench client must recover and
#      the recovered body must be byte-identical to the baseline.
#   2. kill injected at net_write: the server dies with a real
#      _Exit(137) mid-response; a restarted server loaded from the same
#      bundle must answer byte-identically to the baseline.
#   3. SIGTERM under load: a drain requested while a request is in
#      flight must let that request finish (client exit 0, identical
#      body), commit the drain checkpoint, and exit 0.
set -u

MEXI_SERVE="${MEXI_SERVE:?path to the mexi_serve binary (set by ctest)}"
MEXI_CLI="${MEXI_CLI:?path to the mexi_cli binary (set by ctest)}"
BENCH="${BENCH_CLIENT:?path to the mexi_bench_client binary (set by ctest)}"
WORKDIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "${SERVER_PID}" ] && kill -9 "${SERVER_PID}" 2> /dev/null
  rm -rf "${WORKDIR}"
}
trap cleanup EXIT

fail() { echo "serve_chaos: FAIL: $*" >&2; exit 1; }

# --- Training data and a sealed bundle --------------------------------
DATA="${WORKDIR}/data"
"${MEXI_CLI}" simulate --out "${DATA}" --matchers 12 --seed 47 --task po \
    > "${WORKDIR}/simulate.log" || fail "simulate exited $?"
read -r ROWS COLS < <(sed -n \
    's/^rerun with: --rows \([0-9]*\) --cols \([0-9]*\)$/\1 \2/p' \
    "${WORKDIR}/simulate.log")
[ -n "${ROWS:-}" ] && [ -n "${COLS:-}" ] || fail "could not parse task dims"

BUNDLE="${WORKDIR}/model.mxbn"
"${MEXI_CLI}" bundle --dir "${DATA}" --out "${BUNDLE}" \
    --rows "${ROWS}" --cols "${COLS}" > "${WORKDIR}/bundle.log" \
    || fail "bundle exited $?"

BODY="${WORKDIR}/traces.txt"
cat "${DATA}/decisions.csv" > "${BODY}"
printf '%%%%\n' >> "${BODY}"
cat "${DATA}/movements.csv" >> "${BODY}"
PATH_Q="/characterize?rows=${ROWS}&cols=${COLS}"

# start_server <logfile> [extra env assignments as VAR=VALUE ...]
# Launches mexi_serve on an ephemeral port, waits for readiness, and
# sets SERVER_PID / SERVER_PORT.
start_server() {
  local log="$1"; shift
  env "$@" "${MEXI_SERVE}" --bundle "${BUNDLE}" --port 0 \
      --checkpoint-dir "${WORKDIR}/ckpt" > "${log}" 2>&1 &
  SERVER_PID=$!
  SERVER_PORT=""
  for _ in $(seq 1 100); do
    SERVER_PORT="$(sed -n \
        's/^mexi_serve: listening on 127\.0\.0\.1:\([0-9]*\) .*/\1/p' \
        "${log}" 2> /dev/null)"
    [ -n "${SERVER_PORT}" ] && return 0
    kill -0 "${SERVER_PID}" 2> /dev/null || fail "server died at startup: $(cat "${log}")"
    sleep 0.1
  done
  fail "server never became ready: $(cat "${log}")"
}

stop_server() {
  kill -TERM "${SERVER_PID}" 2> /dev/null
  wait "${SERVER_PID}" 2> /dev/null
  SERVER_PID=""
}

# --- Baseline ---------------------------------------------------------
start_server "${WORKDIR}/server.base.log"
"${BENCH}" --port "${SERVER_PORT}" --path "${PATH_Q}" \
    --body-file "${BODY}" > "${WORKDIR}/baseline.jsonl" \
    || fail "baseline request exited $?"
LINES=$(wc -l < "${WORKDIR}/baseline.jsonl")
[ "${LINES}" -eq 12 ] || fail "expected 12 baseline lines, got ${LINES}"
stop_server

# --- 1. conn_reset at net_write: retry recovers, byte-identical -------
start_server "${WORKDIR}/server.reset.log" MEXI_FAULTS="conn_reset@net_write:1"
"${BENCH}" --port "${SERVER_PORT}" --path "${PATH_Q}" \
    --body-file "${BODY}" --retries 5 \
    > "${WORKDIR}/reset.jsonl" 2> "${WORKDIR}/reset.err" \
    || fail "client did not recover from conn_reset: $(cat "${WORKDIR}/reset.err")"
cmp "${WORKDIR}/baseline.jsonl" "${WORKDIR}/reset.jsonl" \
    || fail "recovered response differs from baseline"
stop_server

# --- 2. kill at net_write, then restart byte-identity -----------------
start_server "${WORKDIR}/server.kill.log" MEXI_FAULTS="kill@net_write:1"
"${BENCH}" --port "${SERVER_PORT}" --path "${PATH_Q}" \
    --body-file "${BODY}" --retries 2 --base-backoff-ms 20 \
    > /dev/null 2>&1
wait "${SERVER_PID}" 2> /dev/null
RC=$?
SERVER_PID=""
[ "${RC}" -eq 137 ] || fail "expected server exit 137 after kill fault, got ${RC}"

start_server "${WORKDIR}/server.restart.log"
"${BENCH}" --port "${SERVER_PORT}" --path "${PATH_Q}" \
    --body-file "${BODY}" > "${WORKDIR}/restart.jsonl" \
    || fail "restarted server request exited $?"
cmp "${WORKDIR}/baseline.jsonl" "${WORKDIR}/restart.jsonl" \
    || fail "restarted server is not byte-identical to baseline"
stop_server

# --- 3. SIGTERM under load: drain, checkpoint, exit 0 -----------------
rm -rf "${WORKDIR}/ckpt"
start_server "${WORKDIR}/server.drain.log"
"${BENCH}" --port "${SERVER_PORT}" --path "${PATH_Q}" \
    --body-file "${BODY}" > "${WORKDIR}/drain.jsonl" \
    2> "${WORKDIR}/drain.err" &
CLIENT_PID=$!
sleep 0.3  # let the request land in flight
kill -TERM "${SERVER_PID}"
wait "${SERVER_PID}" 2> /dev/null
RC=$?
SERVER_PID=""
[ "${RC}" -eq 0 ] || fail "drain exit code ${RC}: $(cat "${WORKDIR}/server.drain.log")"
wait "${CLIENT_PID}"
CLIENT_RC=$?
[ "${CLIENT_RC}" -eq 0 ] \
    || fail "in-flight client lost its response during drain: $(cat "${WORKDIR}/drain.err")"
cmp "${WORKDIR}/baseline.jsonl" "${WORKDIR}/drain.jsonl" \
    || fail "drained in-flight response differs from baseline"
[ -f "${WORKDIR}/ckpt/serve.bin" ] \
    || fail "drain checkpoint was not committed"
grep -q "drained" "${WORKDIR}/server.drain.log" \
    || fail "no drain summary line in server log"

echo "serve_chaos: PASS"
