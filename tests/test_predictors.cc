#include "matching/predictors.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

namespace mexi::matching {
namespace {

std::map<std::string, double> AsMap(const MatchMatrix& m) {
  std::map<std::string, double> out;
  for (const auto& p : ComputePredictors(m)) out[p.name] = p.value;
  return out;
}

TEST(PredictorsTest, NamesAreCompleteAndOrdered) {
  MatchMatrix m(3, 3);
  m.Set(0, 0, 0.5);
  const auto predictors = ComputePredictors(m);
  const auto& names = PredictorNames();
  ASSERT_EQ(predictors.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(predictors[i].name, names[i]);
  }
}

TEST(PredictorsTest, EmptyMatrixAllZero) {
  MatchMatrix m(3, 4);
  for (const auto& p : ComputePredictors(m)) {
    EXPECT_DOUBLE_EQ(p.value, 0.0) << p.name;
  }
}

TEST(PredictorsTest, DiagonalMatrixIsFullyDominant) {
  MatchMatrix m(3, 3);
  m.Set(0, 0, 0.9);
  m.Set(1, 1, 0.8);
  m.Set(2, 2, 0.7);
  const auto p = AsMap(m);
  EXPECT_DOUBLE_EQ(p.at("dom"), 1.0);       // every entry dominates
  EXPECT_DOUBLE_EQ(p.at("bbm"), 1.0);       // balanced rows/cols
  EXPECT_DOUBLE_EQ(p.at("rowCoverage"), 1.0);
  EXPECT_DOUBLE_EQ(p.at("colCoverage"), 1.0);
  EXPECT_NEAR(p.at("avgConf"), 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(p.at("maxConf"), 0.9);
  EXPECT_DOUBLE_EQ(p.at("minConf"), 0.7);
  EXPECT_NEAR(p.at("matchRatio"), 3.0 / 9.0, 1e-12);
}

TEST(PredictorsTest, AmbiguousRowLowersBpm) {
  MatchMatrix crisp(2, 3);
  crisp.Set(0, 0, 0.9);
  crisp.Set(0, 1, 0.1);
  MatchMatrix fuzzy(2, 3);
  fuzzy.Set(0, 0, 0.9);
  fuzzy.Set(0, 1, 0.85);
  EXPECT_GT(AsMap(crisp).at("bpm"), AsMap(fuzzy).at("bpm"));
}

TEST(PredictorsTest, EntropyGrowsWithSpread) {
  MatchMatrix peaked(2, 2);
  peaked.Set(0, 0, 1.0);
  MatchMatrix spread(2, 2);
  spread.Set(0, 0, 0.5);
  spread.Set(0, 1, 0.5);
  spread.Set(1, 0, 0.5);
  spread.Set(1, 1, 0.5);
  EXPECT_GT(AsMap(spread).at("entropy"), AsMap(peaked).at("entropy"));
}

TEST(PredictorsTest, McdPositiveWhenEntriesStandOut) {
  MatchMatrix m(2, 4);
  m.Set(0, 0, 0.8);  // row mean 0.2 -> deviation 0.6
  EXPECT_GT(AsMap(m).at("mcd"), 0.5);
}

TEST(PredictorsTest, PcaDetectsRankStructure) {
  // Rank-1-ish matrix: rows proportional -> pca1 near 1.
  MatchMatrix rank1(4, 3);
  for (std::size_t i = 0; i < 4; ++i) {
    const double scale = 0.2 + 0.2 * static_cast<double>(i);
    rank1.Set(i, 0, scale);
    rank1.Set(i, 1, scale * 0.5);
    rank1.Set(i, 2, scale * 0.25);
  }
  const auto p = AsMap(rank1);
  EXPECT_GT(p.at("pca1"), 0.95);
  EXPECT_LT(p.at("pca2"), 0.05);
}

TEST(PredictorsTest, LeaningListsReferToKnownPredictors) {
  const auto& names = PredictorNames();
  auto known = [&](const std::string& name) {
    for (const auto& n : names) {
      if (n == name) return true;
    }
    return false;
  };
  for (const auto& n : PrecisionLeaningPredictors()) {
    EXPECT_TRUE(known(n)) << n;
  }
  for (const auto& n : RecallLeaningPredictors()) {
    EXPECT_TRUE(known(n)) << n;
  }
}

TEST(PredictorsTest, ValuesAreFinite) {
  MatchMatrix m(5, 7);
  m.Set(0, 0, 0.3);
  m.Set(2, 6, 1.0);
  m.Set(4, 4, 0.001);
  for (const auto& p : ComputePredictors(m)) {
    EXPECT_TRUE(std::isfinite(p.value)) << p.name;
  }
}

}  // namespace
}  // namespace mexi::matching
