// Golden-determinism lock for the neural substrate.
//
// These tests hash every byte of the LSTM and CNN Fit+Predict outputs on
// fixed synthetic data and compare against constants recorded from the
// pre-kernel-refactor build (PR 1 state). Any change to accumulation
// order, RNG consumption, or layer arithmetic flips the hash — the fused
// kernels and workspace reuse must be bitwise no-ops, not "close enough".

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "ml/nn/cnn.h"
#include "ml/nn/lstm.h"
#include "stats/rng.h"

namespace mexi::ml {
namespace {

/// FNV-1a over the raw little-endian bytes of each double, in order.
std::uint64_t Fnv1a64(const std::vector<double>& values,
                      std::uint64_t hash = 0xcbf29ce484222325ULL) {
  for (double v : values) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      hash ^= (bits >> (8 * b)) & 0xffULL;
      hash *= 0x100000001b3ULL;
    }
  }
  return hash;
}

TEST(GoldenNn, LstmFitPredictBitwiseStable) {
  LstmSequenceModel::Config config;
  config.input_dim = 3;
  config.hidden_dim = 12;
  config.dense_dim = 16;
  config.num_labels = 4;
  config.dropout = 0.5;  // exercises the dropout RNG stream too
  config.epochs = 3;
  config.batch_size = 4;
  config.seed = 21;

  stats::Rng rng(31);
  std::vector<Sequence> sequences;
  std::vector<std::vector<double>> targets;
  for (int i = 0; i < 10; ++i) {
    Sequence seq;
    const std::size_t len = 3 + rng.UniformIndex(8);
    for (std::size_t t = 0; t < len; ++t) {
      seq.push_back({rng.Uniform(), rng.Gaussian(), rng.Uniform(-1.0, 1.0)});
    }
    sequences.push_back(std::move(seq));
    targets.push_back({rng.Bernoulli(0.5) ? 1.0 : 0.0,
                       rng.Bernoulli(0.5) ? 1.0 : 0.0,
                       rng.Bernoulli(0.3) ? 1.0 : 0.0,
                       rng.Bernoulli(0.7) ? 1.0 : 0.0});
  }
  // Include an empty sequence: it must leave the hidden state at zero
  // without consuming workspace from the previous sequence.
  sequences.push_back({});
  targets.push_back({0.0, 0.0, 0.0, 0.0});

  LstmSequenceModel model(config);
  const double loss = model.Fit(sequences, targets);

  std::vector<double> flat{loss};
  for (const auto& seq : sequences) {
    for (double p : model.Predict(seq)) flat.push_back(p);
  }
  const std::uint64_t hash = Fnv1a64(flat);
  EXPECT_EQ(hash, 0xe7c027f32a44308eULL)
      << "LSTM golden hash changed: 0x" << std::hex << hash;
}

TEST(GoldenNn, CnnFitPredictBitwiseStable) {
  CnnImageModel::Config config;
  config.image_rows = 12;
  config.image_cols = 16;
  config.conv1_filters = 3;
  config.conv2_filters = 5;
  config.dense_dim = 10;
  config.num_labels = 4;
  config.epochs = 2;
  config.batch_size = 4;
  config.seed = 23;

  stats::Rng rng(37);
  std::vector<Image> images;
  std::vector<std::vector<double>> targets;
  for (int i = 0; i < 8; ++i) {
    images.push_back(Matrix::RandomGaussian(12, 16, 1.0, rng));
    targets.push_back({rng.Bernoulli(0.5) ? 1.0 : 0.0,
                       rng.Bernoulli(0.5) ? 1.0 : 0.0,
                       rng.Bernoulli(0.3) ? 1.0 : 0.0,
                       rng.Bernoulli(0.7) ? 1.0 : 0.0});
  }

  CnnImageModel model(config);
  // Two Fit calls reproduce the pretrain -> fine-tune protocol and catch
  // workspace state leaking across Fit boundaries.
  model.Fit(images, targets, 1);
  const double loss = model.Fit(images, targets);

  std::vector<double> flat{loss};
  for (const auto& img : images) {
    for (double p : model.Predict(img)) flat.push_back(p);
  }
  const std::uint64_t hash = Fnv1a64(flat);
  EXPECT_EQ(hash, 0x3b0691bf49b5b42bULL)
      << "CNN golden hash changed: 0x" << std::hex << hash;
}

}  // namespace
}  // namespace mexi::ml
