#include "matching/similarity.h"

#include <gtest/gtest.h>

#include "schema/generators.h"

namespace mexi::matching {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  // kitten -> sitting: distance 3, max length 7.
  EXPECT_NEAR(LevenshteinSimilarity("kitten", "sitting"), 1.0 - 3.0 / 7.0,
              1e-12);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", ""), 0.0);
}

TEST(LevenshteinTest, CaseInsensitive) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("OrderDate", "orderdate"), 1.0);
}

TEST(JaroWinklerTest, KnownValues) {
  // Classic example: MARTHA / MARHTA has Jaro 0.944..., JW 0.961...
  EXPECT_NEAR(JaroWinklerSimilarity("MARTHA", "MARHTA"), 0.9611, 1e-3);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("same", "same"), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroWinklerTest, PrefixBoost) {
  // A shared prefix must raise the score over a permuted variant.
  EXPECT_GT(JaroWinklerSimilarity("orderCode", "orderCude"),
            JaroWinklerSimilarity("orderCode", "edoCredro"));
}

TEST(TrigramTest, OverlapAndFallback) {
  EXPECT_DOUBLE_EQ(TrigramSimilarity("abcd", "abcd"), 1.0);
  EXPECT_GT(TrigramSimilarity("orderDate", "orderDay"), 0.3);
  // Too short for trigrams -> exact-match fallback.
  EXPECT_DOUBLE_EQ(TrigramSimilarity("ab", "ab"), 1.0);
  EXPECT_DOUBLE_EQ(TrigramSimilarity("ab", "cd"), 0.0);
}

TEST(TokenJaccardTest, SharedTokens) {
  // {order, date} vs {order, day}: intersection {order}, union 3.
  EXPECT_NEAR(TokenJaccardSimilarity("orderDate", "order_day"), 1.0 / 3.0,
              1e-12);
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("shipCity", "ship_city"), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("abc", "xyz"), 0.0);
}

TEST(CompositeTest, IdenticalAttributesScoreHigh) {
  schema::Attribute a;
  a.name = "orderDate";
  a.type = schema::DataType::kDate;
  a.instances = {"2021-01-01"};
  EXPECT_GT(CompositeSimilarity(a, a), 0.9);
}

TEST(CompositeTest, BoundsAndTypeBonus) {
  schema::Attribute a, b;
  a.name = "orderDate";
  a.type = schema::DataType::kDate;
  b.name = "orderDay";
  b.type = schema::DataType::kDate;
  const double same_type = CompositeSimilarity(a, b);
  b.type = schema::DataType::kString;
  const double different_type = CompositeSimilarity(a, b);
  EXPECT_GT(same_type, different_type);
  EXPECT_GE(different_type, 0.0);
  EXPECT_LE(same_type, 1.0);
}

TEST(CompositeTest, UnrelatedNamesScoreLow) {
  schema::Attribute a, b;
  a.name = "freightCost";
  b.name = "authorBiography";
  EXPECT_LT(CompositeSimilarity(a, b), 0.35);
}

TEST(SimilarityMatrixTest, ShapeAndLeafOnly) {
  const auto pair = schema::GenerateWarmupTask(3);
  const MatchMatrix m = BuildSimilarityMatrix(pair.source, pair.target);
  EXPECT_EQ(m.source_size(), pair.source.size());
  EXPECT_EQ(m.target_size(), pair.target.size());
  // Internal nodes must have all-zero rows/columns.
  for (std::size_t i = 0; i < pair.source.size(); ++i) {
    if (pair.source.attribute(i).children.empty()) continue;
    for (std::size_t j = 0; j < pair.target.size(); ++j) {
      EXPECT_DOUBLE_EQ(m.At(i, j), 0.0);
    }
  }
}

TEST(SimilarityMatrixTest, ReferencePairsScoreAboveRandomPairs) {
  const auto pair = schema::GeneratePurchaseOrderTask(17);
  const MatchMatrix m = BuildSimilarityMatrix(pair.source, pair.target);
  double ref_total = 0.0;
  for (const auto& [i, j] : pair.reference) ref_total += m.At(i, j);
  const double ref_mean =
      ref_total / static_cast<double>(pair.reference.size());

  double all_total = 0.0;
  std::size_t count = 0;
  for (std::size_t i : pair.source.Leaves()) {
    for (std::size_t j : pair.target.Leaves()) {
      all_total += m.At(i, j);
      ++count;
    }
  }
  const double all_mean = all_total / static_cast<double>(count);
  EXPECT_GT(ref_mean, all_mean + 0.25)
      << "true correspondences must stand out from the landscape";
}

}  // namespace
}  // namespace mexi::matching
