#include "serve/http.h"

#include <gtest/gtest.h>

#include <string>

#include "robust/status.h"

namespace mexi::serve {
namespace {

using State = HttpRequestParser::State;

State FeedAll(HttpRequestParser& parser, const std::string& bytes) {
  return parser.Feed(bytes.data(), bytes.size());
}

TEST(HttpParser, ParsesRequestLineQueryAndHeaders) {
  HttpRequestParser parser;
  const State state = FeedAll(
      parser,
      "GET /characterize?rows=4&cols=6 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "X-Deadline-Ms:  250 \r\n"
      "\r\n");
  ASSERT_EQ(state, State::kDone);
  const HttpRequest& request = parser.request();
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/characterize");
  EXPECT_EQ(request.query, "rows=4&cols=6");
  // Lookup is case-insensitive and values are trimmed.
  EXPECT_EQ(request.Header("x-deadline-ms"), "250");
  EXPECT_EQ(request.Header("X-DEADLINE-MS"), "250");
  EXPECT_EQ(request.Header("absent"), "");
  EXPECT_TRUE(request.body.empty());
  EXPECT_FALSE(request.http10);
}

TEST(HttpParser, RecordsHttp10Version) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(parser, "GET /status HTTP/1.0\r\n\r\n"), State::kDone);
  EXPECT_TRUE(parser.request().http10);
  // The flag resets with the request on keep-alive reuse.
  parser.Reset();
  ASSERT_EQ(FeedAll(parser, "GET /status HTTP/1.1\r\n\r\n"), State::kDone);
  EXPECT_FALSE(parser.request().http10);
}

TEST(HttpHelpers, HeaderHasTokenMatchesWholeTokensInLists) {
  EXPECT_TRUE(HeaderHasToken("close", "close"));
  EXPECT_TRUE(HeaderHasToken("Close", "close"));
  EXPECT_TRUE(HeaderHasToken("  close  ", "close"));
  EXPECT_TRUE(HeaderHasToken("close, te", "close"));
  EXPECT_TRUE(HeaderHasToken("te , Keep-Alive", "keep-alive"));
  EXPECT_FALSE(HeaderHasToken("", "close"));
  EXPECT_FALSE(HeaderHasToken("closed", "close"));
  EXPECT_FALSE(HeaderHasToken("keep-alive", "close"));
}

TEST(HttpParser, AssemblesBodyAcrossByteAtATimeFeeds) {
  const std::string wire =
      "POST /stream HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world";
  HttpRequestParser parser;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    ASSERT_EQ(parser.Feed(&wire[i], 1), State::kReading) << "byte " << i;
  }
  ASSERT_EQ(parser.Feed(&wire[wire.size() - 1], 1), State::kDone);
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().body, "hello world");
}

TEST(HttpParser, ResetPreservesPipelinedBytes) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(parser,
                    "GET /status HTTP/1.1\r\n\r\n"
                    "GET /metrics HTTP/1.1\r\n\r\n"),
            State::kDone);
  EXPECT_EQ(parser.request().path, "/status");
  parser.Reset();
  // The second request was already buffered and parses without new bytes.
  ASSERT_EQ(parser.state(), State::kDone);
  EXPECT_EQ(parser.request().path, "/metrics");
  parser.Reset();
  EXPECT_EQ(parser.state(), State::kReading);
}

TEST(HttpParser, RejectsBadGrammarWithRightStatuses) {
  {
    HttpRequestParser parser;
    EXPECT_EQ(FeedAll(parser, "NONSENSE\r\n\r\n"), State::kError);
    EXPECT_EQ(parser.http_error(), 400);
  }
  {
    HttpRequestParser parser;
    EXPECT_EQ(FeedAll(parser, "GET /x HTTP/0.9\r\n\r\n"), State::kError);
    EXPECT_EQ(parser.http_error(), 505);
  }
  {
    HttpRequestParser parser;
    EXPECT_EQ(FeedAll(parser, "GET noslash HTTP/1.1\r\n\r\n"), State::kError);
    EXPECT_EQ(parser.http_error(), 400);
  }
  {
    HttpRequestParser parser;
    EXPECT_EQ(FeedAll(parser,
                      "GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
              State::kError);
    EXPECT_EQ(parser.http_error(), 400);
  }
  {
    HttpRequestParser parser;
    EXPECT_EQ(
        FeedAll(parser,
                "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
        State::kError);
    EXPECT_EQ(parser.http_error(), 400);
  }
}

TEST(HttpParser, BoundsHeaderAndBodySizes) {
  {
    // An unterminated header block larger than the limit parks in kError
    // before buffering more.
    HttpRequestParser parser;
    const std::string flood(HttpRequestParser::kMaxHeaderBytes + 64, 'a');
    EXPECT_EQ(FeedAll(parser, "GET / HTTP/1.1\r\nX: " + flood),
              State::kError);
    EXPECT_EQ(parser.http_error(), 431);
  }
  {
    // A declared body beyond the cap is rejected from the header alone —
    // the bytes are never accumulated.
    HttpRequestParser parser;
    EXPECT_EQ(
        FeedAll(parser, "POST / HTTP/1.1\r\nContent-Length: " +
                            std::to_string(HttpRequestParser::kMaxBodyBytes +
                                           1) +
                            "\r\n\r\n"),
        State::kError);
    EXPECT_EQ(parser.http_error(), 413);
  }
}

TEST(HttpParser, ErrorStateIgnoresFurtherBytes) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(parser, "BAD\r\n\r\n"), State::kError);
  EXPECT_EQ(FeedAll(parser, "GET / HTTP/1.1\r\n\r\n"), State::kError);
  parser.Reset();
  EXPECT_EQ(parser.http_error(), 0);
}

TEST(HttpHelpers, QueryParamFindsTokens) {
  EXPECT_EQ(QueryParam("rows=4&cols=6", "rows"), "4");
  EXPECT_EQ(QueryParam("rows=4&cols=6", "cols"), "6");
  EXPECT_EQ(QueryParam("rows=4&cols=6", "depth"), "");
  EXPECT_EQ(QueryParam("", "rows"), "");
  EXPECT_EQ(QueryParam("flag&rows=9", "rows"), "9");
}

TEST(HttpHelpers, FormatsFixedLengthResponses) {
  const std::string response = FormatHttpResponse(
      503, "application/json", "{}", {{"Retry-After", "1"}}, /*close=*/true);
  EXPECT_NE(response.find("HTTP/1.1 503 Service Unavailable\r\n"),
            std::string::npos);
  EXPECT_NE(response.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(response.substr(response.size() - 6), "\r\n\r\n{}");
}

TEST(HttpHelpers, ChunkedEncodingRoundTrips) {
  EXPECT_EQ(EncodeChunk("abc"), "3\r\nabc\r\n");
  // 26 bytes => hex "1a".
  EXPECT_EQ(EncodeChunk(std::string(26, 'x')),
            "1a\r\n" + std::string(26, 'x') + "\r\n");
  // An empty chunk would terminate the stream early, so it encodes to
  // nothing; termination is explicit via FinalChunk.
  EXPECT_EQ(EncodeChunk(""), "");
  EXPECT_EQ(FinalChunk(), "0\r\n\r\n");
  const std::string header = FormatChunkedHeader(200, "application/x-ndjson");
  EXPECT_NE(header.find("Transfer-Encoding: chunked\r\n"), std::string::npos);
  EXPECT_EQ(header.find("Content-Length"), std::string::npos);
}

TEST(HttpHelpers, StatusCodeMappingCoversEveryCategory) {
  using robust::StatusCode;
  EXPECT_EQ(HttpStatusFromCode(StatusCode::kOk), 200);
  EXPECT_EQ(HttpStatusFromCode(StatusCode::kInvalidArgument), 400);
  EXPECT_EQ(HttpStatusFromCode(StatusCode::kParseError), 400);
  EXPECT_EQ(HttpStatusFromCode(StatusCode::kNotFound), 404);
  EXPECT_EQ(HttpStatusFromCode(StatusCode::kResourceExhausted), 503);
  EXPECT_EQ(HttpStatusFromCode(StatusCode::kAborted), 503);
  EXPECT_EQ(HttpStatusFromCode(StatusCode::kIoError), 500);
  EXPECT_EQ(HttpStatusFromCode(StatusCode::kCorruption), 500);
  EXPECT_EQ(HttpStatusFromCode(StatusCode::kDivergence), 500);
}

}  // namespace
}  // namespace mexi::serve
