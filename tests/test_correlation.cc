#include "stats/correlation.h"

#include <gtest/gtest.h>

namespace mexi::stats {
namespace {

TEST(PearsonTest, PerfectPositiveAndNegative) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {2, 3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1}, {2}), 0.0);
  EXPECT_THROW(PearsonCorrelation({1, 2}, {1}), std::invalid_argument);
}

TEST(AverageRanksTest, TiesShareMeanRank) {
  const auto ranks = AverageRanks({10.0, 20.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(SpearmanTest, MonotoneNonlinearIsOne) {
  EXPECT_NEAR(SpearmanCorrelation({1, 2, 3, 4, 5}, {1, 4, 9, 16, 25}), 1.0,
              1e-12);
}

TEST(GammaTest, PerfectAssociation) {
  // Higher confidence always on correct decisions.
  const auto result =
      GoodmanKruskalGamma({0.9, 0.8, 0.2, 0.1}, {1.0, 1.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(result.value, 1.0);
  EXPECT_EQ(result.concordant, 4);
  EXPECT_EQ(result.discordant, 0);
}

TEST(GammaTest, PerfectInverse) {
  const auto result =
      GoodmanKruskalGamma({0.1, 0.2, 0.8, 0.9}, {1.0, 1.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(result.value, -1.0);
}

TEST(GammaTest, PaperTableOneExample) {
  // The running example of the paper (Table I / Section II-B2): final
  // confidences {M34: 1.0, M11: 0.5, M12: 0.5, M21: 0.45} with M21 the
  // only incorrect decision. Resolution is 1.0 but with only 3 untied
  // pairs the association is not significant (the paper reports
  // p_val = 0.5).
  const auto result = GoodmanKruskalGamma({1.0, 0.5, 0.5, 0.45},
                                          {1.0, 1.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(result.value, 1.0);
  EXPECT_DOUBLE_EQ(result.p_value, 0.5);
}

TEST(GammaTest, LargePerfectSampleIsSignificant) {
  std::vector<double> conf, correct;
  for (int i = 0; i < 20; ++i) {
    conf.push_back(i < 10 ? 0.9 : 0.1);
    correct.push_back(i < 10 ? 1.0 : 0.0);
  }
  const auto result = GoodmanKruskalGamma(conf, correct);
  EXPECT_DOUBLE_EQ(result.value, 1.0);
  EXPECT_LT(result.p_value, 0.05);
}

TEST(GammaTest, AllTiesYieldsZero) {
  const auto result = GoodmanKruskalGamma({0.5, 0.5, 0.5}, {1, 0, 1});
  EXPECT_DOUBLE_EQ(result.value, 0.0);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(GammaTest, NoAssociationInsignificant) {
  // Confidence unrelated to correctness.
  std::vector<double> conf, correct;
  for (int i = 0; i < 40; ++i) {
    conf.push_back((i * 7 % 10) / 10.0);
    correct.push_back(i % 2);
  }
  const auto result = GoodmanKruskalGamma(conf, correct);
  EXPECT_LT(std::abs(result.value), 0.35);
  EXPECT_GT(result.p_value, 0.05);
}

TEST(KendallTauTest, PerfectOrderAndSignificance) {
  std::vector<double> x, y;
  for (int i = 0; i < 15; ++i) {
    x.push_back(i);
    y.push_back(i * 2.0);
  }
  const auto result = KendallTau(x, y);
  EXPECT_DOUBLE_EQ(result.value, 1.0);
  EXPECT_LT(result.p_value, 0.01);
  const auto inverse = KendallTau(x, std::vector<double>(x.rbegin(),
                                                         x.rend()));
  EXPECT_DOUBLE_EQ(inverse.value, -1.0);
}

TEST(KendallTauTest, TiesShrinkTauButNotGamma) {
  // Two tied x values: gamma ignores the tied pair, tau counts it in
  // the denominator, so |tau| < |gamma|.
  const std::vector<double> x{1.0, 1.0, 2.0, 3.0};
  const std::vector<double> y{1.0, 2.0, 3.0, 4.0};
  const auto tau = KendallTau(x, y);
  const auto gamma = GoodmanKruskalGamma(x, y);
  EXPECT_LT(tau.value, gamma.value);
  EXPECT_DOUBLE_EQ(gamma.value, 1.0);
  EXPECT_NEAR(tau.value, 5.0 / 6.0, 1e-12);
}

TEST(GammaTest, TinyInput) {
  const auto result = GoodmanKruskalGamma({0.5}, {1.0});
  EXPECT_DOUBLE_EQ(result.value, 0.0);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

}  // namespace
}  // namespace mexi::stats
