#include "matching/io.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "robust/fault_injection.h"
#include "robust/status.h"

namespace mexi::matching {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<LoadedMatcher> TwoMatchers() {
  std::vector<LoadedMatcher> matchers(2);
  matchers[0].id = 3;
  matchers[0].history.Add({0, 1, 0.9, 1.5});
  matchers[0].history.Add({2, 2, 0.4, 7.25});
  matchers[0].movement = MovementMap(1280.0, 800.0);
  matchers[0].movement.Add({10.5, 20.25, MovementType::kMove, 0.5});
  matchers[0].movement.Add({30.0, 40.0, MovementType::kLeftClick, 2.0});
  matchers[1].id = 9;
  matchers[1].history.Add({1, 0, 0.55, 3.0});
  matchers[1].movement = MovementMap(1280.0, 800.0);
  matchers[1].movement.Add({100.0, 200.0, MovementType::kScroll, 1.0});
  matchers[1].movement.Add({110.0, 210.0, MovementType::kRightClick, 4.0});
  return matchers;
}

TEST(IoTest, DecisionsRoundTrip) {
  const auto original = TwoMatchers();
  std::stringstream buffer;
  WriteDecisionsCsv(original, buffer);
  const auto loaded = ReadDecisionsCsv(buffer);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].id, 3);
  EXPECT_EQ(loaded[1].id, 9);
  ASSERT_EQ(loaded[0].history.size(), 2u);
  EXPECT_EQ(loaded[0].history.at(0).source, 0u);
  EXPECT_EQ(loaded[0].history.at(0).target, 1u);
  EXPECT_DOUBLE_EQ(loaded[0].history.at(0).confidence, 0.9);
  EXPECT_DOUBLE_EQ(loaded[0].history.at(1).timestamp, 7.25);
}

TEST(IoTest, MovementsRoundTrip) {
  const auto original = TwoMatchers();
  std::stringstream decisions, movements;
  WriteDecisionsCsv(original, decisions);
  WriteMovementsCsv(original, movements);
  auto loaded = ReadDecisionsCsv(decisions);
  ReadMovementsCsv(movements, &loaded);
  ASSERT_EQ(loaded[0].movement.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded[0].movement.events()[0].x, 10.5);
  EXPECT_EQ(loaded[0].movement.events()[1].type,
            MovementType::kLeftClick);
  EXPECT_EQ(loaded[1].movement.events()[0].type, MovementType::kScroll);
  EXPECT_EQ(loaded[1].movement.events()[1].type,
            MovementType::kRightClick);
  EXPECT_DOUBLE_EQ(loaded[0].movement.screen_width(), 1280.0);
}

TEST(IoTest, ReferenceRoundTrip) {
  const std::vector<ElementPair> reference{{0, 5}, {7, 2}, {3, 3}};
  std::stringstream buffer;
  WriteReferenceCsv(reference, buffer);
  EXPECT_EQ(ReadReferenceCsv(buffer), reference);
}

TEST(IoTest, MalformedDecisionLineReportsLineNumber) {
  std::stringstream buffer(
      "matcher_id,source,target,confidence,timestamp\n"
      "1,0,0,0.5,1.0\n"
      "1,0,zero,0.5,2.0\n");
  try {
    ReadDecisionsCsv(buffer);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(IoTest, WrongFieldCountRejected) {
  std::stringstream buffer(
      "matcher_id,source,target,confidence,timestamp\n"
      "1,0,0,0.5\n");
  EXPECT_THROW(ReadDecisionsCsv(buffer), std::runtime_error);
}

TEST(IoTest, NegativeIndexRejected) {
  std::stringstream buffer(
      "matcher_id,source,target,confidence,timestamp\n"
      "1,-2,0,0.5,1.0\n");
  EXPECT_THROW(ReadDecisionsCsv(buffer), std::runtime_error);
}

TEST(IoTest, NonMonotonicTimestampsRejected) {
  std::stringstream buffer(
      "matcher_id,source,target,confidence,timestamp\n"
      "1,0,0,0.5,5.0\n"
      "1,0,1,0.5,1.0\n");
  EXPECT_THROW(ReadDecisionsCsv(buffer), std::runtime_error);
}

TEST(IoTest, MovementForUnknownMatcherRejected) {
  std::stringstream movements(
      "matcher_id,x,y,type,timestamp\n"
      "#screen,1280,800\n"
      "42,1.0,2.0,m,1.0\n");
  std::vector<LoadedMatcher> matchers;  // empty: id 42 unknown
  EXPECT_THROW(ReadMovementsCsv(movements, &matchers), std::runtime_error);
}

TEST(IoTest, UnknownMovementTypeRejected) {
  auto matchers = TwoMatchers();
  std::stringstream movements(
      "matcher_id,x,y,type,timestamp\n"
      "3,1.0,2.0,q,1.0\n");
  EXPECT_THROW(ReadMovementsCsv(movements, &matchers), std::runtime_error);
}

TEST(IoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream buffer(
      "source,target\n"
      "\n"
      "# a comment\n"
      "1,2\n");
  const auto reference = ReadReferenceCsv(buffer);
  ASSERT_EQ(reference.size(), 1u);
  EXPECT_EQ(reference[0], (ElementPair{1, 2}));
}

TEST(IoTest, FileRoundTrip) {
  const auto original = TwoMatchers();
  const std::string dir = ::testing::TempDir();
  SaveMatchersToFiles(original, dir + "/d.csv", dir + "/m.csv");
  const auto loaded = LoadMatchersFromFiles(dir + "/d.csv", dir + "/m.csv");
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].history.size(), original[0].history.size());
  EXPECT_EQ(loaded[1].movement.size(), original[1].movement.size());

  SaveReferenceToFile({{1, 1}}, dir + "/r.csv");
  EXPECT_EQ(LoadReferenceFromFile(dir + "/r.csv").size(), 1u);
  EXPECT_THROW(LoadReferenceFromFile(dir + "/missing.csv"),
               std::runtime_error);
}

TEST(IoTest, EmptyDecisionsFileRejected) {
  std::stringstream empty("");
  try {
    ReadDecisionsCsv(empty);
    FAIL() << "empty file accepted";
  } catch (const robust::StatusError& e) {
    EXPECT_EQ(e.status().code(), robust::StatusCode::kParseError);
  }
}

TEST(IoTest, EmptyMovementsFileRejected) {
  std::stringstream empty("# only a comment, no header\n");
  std::vector<LoadedMatcher> matchers;
  try {
    ReadMovementsCsv(empty, &matchers);
    FAIL() << "headerless file accepted";
  } catch (const robust::StatusError& e) {
    EXPECT_EQ(e.status().code(), robust::StatusCode::kParseError);
  }
}

TEST(IoTest, NonFiniteValueRejectedWithLineNumber) {
  std::stringstream buffer(
      "matcher_id,source,target,confidence,timestamp\n"
      "1,0,0,nan,1.0\n");
  try {
    ReadDecisionsCsv(buffer);
    FAIL() << "NaN confidence accepted";
  } catch (const robust::StatusError& e) {
    EXPECT_EQ(e.status().code(), robust::StatusCode::kParseError);
    EXPECT_EQ(e.status().line(), 2u);
  }
}

TEST(IoTest, ParseErrorsCarryStructuredLine) {
  std::stringstream buffer(
      "matcher_id,source,target,confidence,timestamp\n"
      "1,0,0,0.5,1.0\n"
      "1,0,bad,0.5,2.0\n");
  try {
    ReadDecisionsCsv(buffer);
    FAIL() << "expected parse error";
  } catch (const robust::StatusError& e) {
    EXPECT_EQ(e.status().code(), robust::StatusCode::kParseError);
    EXPECT_EQ(e.status().line(), 3u);
  }
}

TEST(IoTest, MissingFileIsStructuredNotFound) {
  try {
    LoadReferenceFromFile("/nonexistent/path/reference.csv");
    FAIL() << "missing file accepted";
  } catch (const robust::StatusError& e) {
    EXPECT_EQ(e.status().code(), robust::StatusCode::kNotFound);
    EXPECT_FALSE(e.status().file().empty());
  }
}

TEST(IoTest, ValidateMatchersCatchesOutOfRangeDecision) {
  const auto matchers = TwoMatchers();
  // Matcher 3 decided on (2, 2); a 2x2 task only has indices 0..1.
  EXPECT_NO_THROW(ValidateMatchers(matchers, 3, 3));
  try {
    ValidateMatchers(matchers, 2, 2);
    FAIL() << "out-of-range decision accepted";
  } catch (const robust::StatusError& e) {
    EXPECT_EQ(e.status().code(), robust::StatusCode::kInvalidArgument);
    EXPECT_NE(e.status().message().find("matcher 3"), std::string::npos);
  }
}

// Read-path chaos: a torn read (parser sees a prefix of a line) and an
// EINTR-style read failure must both surface as structured StatusError,
// never UB or a silent short load. Uses the process-global injector the
// same way MEXI_FAULTS does.
class IoFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { robust::FaultInjector::Global().Clear(); }

  static std::string DecisionsCsv() {
    const auto matchers = TwoMatchers();
    std::stringstream buffer;
    WriteDecisionsCsv(matchers, buffer);
    return buffer.str();
  }
};

TEST_F(IoFaultTest, TornReadSurfacesAsStructuredParseError) {
  // Line 3 is the second data row: "3,2,2,0.4,7.25" torn to "3,2,2,0"
  // -> wrong field count, reported with the line number.
  robust::FaultInjector::Global().Configure("torn_read@io_read:3");
  std::stringstream buffer(DecisionsCsv());
  try {
    ReadDecisionsCsv(buffer);
    FAIL() << "torn read accepted";
  } catch (const robust::StatusError& e) {
    EXPECT_EQ(e.status().code(), robust::StatusCode::kParseError);
    EXPECT_EQ(e.status().line(), 3u);
  }
}

TEST_F(IoFaultTest, EintrSurfacesAsStructuredIoError) {
  robust::FaultInjector::Global().Configure("eintr@io_read:2");
  std::stringstream buffer(DecisionsCsv());
  try {
    ReadDecisionsCsv(buffer);
    FAIL() << "interrupted read accepted";
  } catch (const robust::StatusError& e) {
    EXPECT_EQ(e.status().code(), robust::StatusCode::kIoError);
    EXPECT_NE(e.status().message().find("EINTR"), std::string::npos);
  }
}

TEST_F(IoFaultTest, UnfiredClauseLeavesReaderBitwiseIntact) {
  // An armed-but-never-reached clause must not perturb parsing.
  robust::FaultInjector::Global().Configure("torn_read@io_read:100000");
  std::stringstream buffer(DecisionsCsv());
  const auto loaded = ReadDecisionsCsv(buffer);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].history.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded[0].history.at(1).timestamp, 7.25);
}

// Write-path chaos at the matchers_write site: SaveMatchersToFiles hits
// the site once per output file (decisions first, then movements).

TEST_F(IoFaultTest, EnospcOnDecisionsWriteIsStructuredAndWritesNothing) {
  robust::FaultInjector::Global().Configure("enospc@matchers_write:1");
  const std::string dir = ::testing::TempDir();
  const std::string decisions = dir + "/enospc_d.csv";
  const std::string movements = dir + "/enospc_m.csv";
  try {
    SaveMatchersToFiles(TwoMatchers(), decisions, movements);
    FAIL() << "ENOSPC write accepted";
  } catch (const robust::StatusError& e) {
    EXPECT_EQ(e.status().code(), robust::StatusCode::kResourceExhausted);
    EXPECT_EQ(e.status().file(), decisions);
  }
  // The fault fired before anything touched the disk.
  EXPECT_FALSE(std::filesystem::exists(decisions));
  EXPECT_FALSE(std::filesystem::exists(movements));
}

TEST_F(IoFaultTest, ShortWriteOnMovementsFileIsStructuredAndDetectable) {
  robust::FaultInjector::Global().Configure("short_write@matchers_write:2");
  const std::string dir = ::testing::TempDir();
  const std::string decisions = dir + "/short_d.csv";
  const std::string movements = dir + "/short_m.csv";
  try {
    SaveMatchersToFiles(TwoMatchers(), decisions, movements);
    FAIL() << "short write accepted";
  } catch (const robust::StatusError& e) {
    EXPECT_EQ(e.status().code(), robust::StatusCode::kIoError);
    EXPECT_EQ(e.status().file(), movements);
    EXPECT_NE(e.status().message().find("short write"), std::string::npos);
  }
  // The first file (site hit 1) committed in full; the second holds
  // only the torn prefix, so a round trip fails loudly, never loads a
  // silent partial population.
  std::ifstream decisions_in(decisions);
  const auto loaded = ReadDecisionsCsv(decisions_in);
  EXPECT_EQ(loaded.size(), 2u);
  std::stringstream full;
  WriteMovementsCsv(TwoMatchers(), full);
  EXPECT_LT(std::filesystem::file_size(movements), full.str().size());
  robust::FaultInjector::Global().Clear();
  EXPECT_THROW(LoadMatchersFromFiles(decisions, movements),
               robust::StatusError);
}

TEST_F(IoFaultTest, UnfiredMatchersWriteClauseKeepsBytesIdentical) {
  const std::string dir = ::testing::TempDir();
  SaveMatchersToFiles(TwoMatchers(), dir + "/plain_d.csv",
                      dir + "/plain_m.csv");
  robust::FaultInjector::Global().Configure(
      "short_write@matchers_write:100000");
  SaveMatchersToFiles(TwoMatchers(), dir + "/armed_d.csv",
                      dir + "/armed_m.csv");
  EXPECT_EQ(Slurp(dir + "/plain_d.csv"), Slurp(dir + "/armed_d.csv"));
  EXPECT_EQ(Slurp(dir + "/plain_m.csv"), Slurp(dir + "/armed_m.csv"));
}

}  // namespace
}  // namespace mexi::matching
