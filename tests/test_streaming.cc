#include "core/streaming.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/mexi.h"
#include "ml/vmath/vmath.h"
#include "parallel/parallel_for.h"
#include "robust/status.h"
#include "test_fixtures.h"

namespace mexi {
namespace {

/// Fast MExI configuration mirroring test_mexi.cc: tiny networks, few
/// epochs — streaming correctness is shape-independent.
MexiConfig FastConfig() {
  MexiConfig config;
  config.submatcher_mode = SubmatcherMode::kNone;
  config.seq.lstm.epochs = 3;
  config.seq.lstm.hidden_dim = 8;
  config.seq.lstm.dense_dim = 8;
  config.spa.cnn.epochs = 2;
  config.spa.pretrain_images = 8;
  config.spa.pretrain_epochs = 1;
  return config;
}

struct FastMathGuard {
  explicit FastMathGuard(bool on) { ml::vmath::SetFastMath(on); }
  ~FastMathGuard() { ml::vmath::SetFastMath(false); }
};

struct ScopedThreads {
  explicit ScopedThreads(std::size_t n) { parallel::SetThreads(n); }
  ~ScopedThreads() { parallel::SetThreads(0); }
};

class StreamingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = testing::MakeSmallPoFixture(12, 47).release();
    const auto measures = ComputeAllMeasures(fixture_->input);
    const ExpertThresholds thresholds = FitThresholds(measures);
    const auto labels = LabelsFromMeasures(measures, thresholds);
    model_ = new Mexi(FastConfig());
    model_->Fit(fixture_->input.matchers, labels, fixture_->input.context);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete fixture_;
    model_ = nullptr;
    fixture_ = nullptr;
  }

  /// Streams `view`'s trace in canonical interleave order up to `count`
  /// decisions (all of them when count >= size) and returns every
  /// emission including the trailing Finalize().
  static std::vector<StreamEmission> StreamPrefix(const MatcherView& view,
                                                  std::size_t count,
                                                  bool trailing_movement) {
    StreamingCharacterizer stream = model_->OpenStream(
        view.source_size, view.target_size, view.movement->screen_width(),
        view.movement->screen_height());
    const auto& events = view.movement->events();
    const std::size_t limit = std::min(count, view.history->size());
    std::size_t next_event = 0;
    std::vector<StreamEmission> emissions;
    for (std::size_t k = 0; k < limit; ++k) {
      const matching::Decision& d = view.history->at(k);
      while (next_event < events.size() &&
             events[next_event].timestamp <= d.timestamp) {
        stream.PushMovement(events[next_event]);
        ++next_event;
      }
      emissions.push_back(stream.PushDecision(d));
    }
    if (trailing_movement) {
      while (next_event < events.size()) {
        stream.PushMovement(events[next_event]);
        ++next_event;
      }
    }
    emissions.push_back(stream.Finalize());
    return emissions;
  }

  /// EXPECT_EQ on every field of two emissions — bitwise, not approx.
  static void ExpectBitwiseEqual(const StreamEmission& a,
                                 const StreamEmission& b) {
    EXPECT_EQ(a.decision_index, b.decision_index);
    EXPECT_EQ(a.is_final, b.is_final);
    EXPECT_EQ(a.label.ToVector(), b.label.ToVector());
    ASSERT_EQ(a.probabilities.size(), b.probabilities.size());
    for (std::size_t c = 0; c < a.probabilities.size(); ++c) {
      EXPECT_EQ(a.probabilities[c], b.probabilities[c]) << "label " << c;
    }
    EXPECT_EQ(a.confidence, b.confidence);
  }

  static testing::StudyFixture* fixture_;
  static Mexi* model_;
};

testing::StudyFixture* StreamingTest::fixture_ = nullptr;
Mexi* StreamingTest::model_ = nullptr;

/// The tentpole contract: after the final decision the streamed estimate
/// is bitwise identical to batch Characterize — across prefix lengths,
/// in exact math. EXPECT_EQ on doubles, no tolerance.
TEST_F(StreamingTest, FinalizeMatchesBatchBitwiseAcrossTraceLengths) {
  const MatcherView& view = fixture_->input.matchers[0];
  const double inf = std::numeric_limits<double>::infinity();
  for (std::size_t length : {std::size_t{1}, std::size_t{2}, std::size_t{17},
                             std::size_t{100}}) {
    SCOPED_TRACE(length);
    const matching::DecisionHistory prefix = view.history->Prefix(length);
    ASSERT_FALSE(prefix.empty());
    // The movement the stream has consumed by decision `length`:
    // everything up to (inclusive) the last decision's timestamp.
    const matching::MovementMap slice = view.movement->TimeSlice(
        -inf, prefix.at(prefix.size() - 1).timestamp);
    MatcherView prefix_view = view;
    prefix_view.history = &prefix;
    prefix_view.movement = &slice;

    const ExpertLabel batch_label = model_->Characterize(prefix_view);
    const std::vector<double> batch_proba =
        model_->CharacterizeProba(prefix_view);

    const auto emissions =
        StreamPrefix(view, length, /*trailing_movement=*/false);
    ASSERT_EQ(emissions.size(), prefix.size() + 1);
    const StreamEmission& final = emissions.back();
    EXPECT_TRUE(final.is_final);
    EXPECT_EQ(final.decision_index, prefix.size());
    EXPECT_EQ(final.label.ToVector(), batch_label.ToVector());
    ASSERT_EQ(final.probabilities.size(), batch_proba.size());
    for (std::size_t c = 0; c < batch_proba.size(); ++c) {
      EXPECT_EQ(final.probabilities[c], batch_proba[c]) << "label " << c;
    }
  }
}

/// Same contract under fast math: stream and batch take the same SIMD
/// paths, so the final emission still matches the batch answer exactly.
TEST_F(StreamingTest, FinalizeMatchesBatchUnderFastMath) {
  FastMathGuard fast(true);
  for (std::size_t i : {std::size_t{0}, std::size_t{5}}) {
    SCOPED_TRACE(i);
    const MatcherView& view = fixture_->input.matchers[i];
    const ExpertLabel batch_label = model_->Characterize(view);
    const std::vector<double> batch_proba = model_->CharacterizeProba(view);
    const auto emissions = StreamPrefix(view, view.history->size(),
                                        /*trailing_movement=*/true);
    const StreamEmission& final = emissions.back();
    EXPECT_EQ(final.label.ToVector(), batch_label.ToVector());
    ASSERT_EQ(final.probabilities.size(), batch_proba.size());
    for (std::size_t c = 0; c < batch_proba.size(); ++c) {
      EXPECT_EQ(final.probabilities[c], batch_proba[c]) << "label " << c;
    }
  }
}

/// CharacterizeStream over the ragged multi-matcher population (every
/// trace a different length): each matcher's final emission equals its
/// batch answer, and the per-decision emission count matches the trace.
TEST_F(StreamingTest, CharacterizeStreamMatchesBatchOnRaggedPopulation) {
  const auto& matchers = fixture_->input.matchers;
  const auto all = model_->CharacterizeStream(matchers);
  ASSERT_EQ(all.size(), matchers.size());
  for (std::size_t i = 0; i < matchers.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_EQ(all[i].size(), matchers[i].history->size() + 1);
    const StreamEmission& final = all[i].back();
    EXPECT_TRUE(final.is_final);
    const ExpertLabel batch_label = model_->Characterize(matchers[i]);
    const std::vector<double> batch_proba =
        model_->CharacterizeProba(matchers[i]);
    EXPECT_EQ(final.label.ToVector(), batch_label.ToVector());
    ASSERT_EQ(final.probabilities.size(), batch_proba.size());
    for (std::size_t c = 0; c < batch_proba.size(); ++c) {
      EXPECT_EQ(final.probabilities[c], batch_proba[c]);
    }
    for (std::size_t k = 0; k + 1 < all[i].size(); ++k) {
      EXPECT_EQ(all[i][k].decision_index, k + 1);
      EXPECT_FALSE(all[i][k].is_final);
    }
  }
}

/// Determinism across the ThreadPool: 1-thread and 8-thread
/// CharacterizeStream runs are bitwise identical, emission by emission,
/// in both math modes.
TEST_F(StreamingTest, ThreadCountInvariantInBothMathModes) {
  const auto& matchers = fixture_->input.matchers;
  for (bool fast : {false, true}) {
    SCOPED_TRACE(fast ? "fast" : "exact");
    FastMathGuard guard(fast);
    std::vector<std::vector<StreamEmission>> single, eight;
    {
      ScopedThreads threads(1);
      single = model_->CharacterizeStream(matchers);
    }
    {
      ScopedThreads threads(8);
      eight = model_->CharacterizeStream(matchers);
    }
    ASSERT_EQ(single.size(), eight.size());
    for (std::size_t i = 0; i < single.size(); ++i) {
      SCOPED_TRACE(i);
      ASSERT_EQ(single[i].size(), eight[i].size());
      for (std::size_t k = 0; k < single[i].size(); ++k) {
        ExpectBitwiseEqual(single[i][k], eight[i][k]);
      }
    }
  }
}

/// Finalize is non-destructive: the stream keeps advancing afterwards
/// and a later Finalize still matches the longer batch answer.
TEST_F(StreamingTest, FinalizeIsNonDestructive) {
  const MatcherView& view = fixture_->input.matchers[1];
  ASSERT_GT(view.history->size(), 4u);
  StreamingCharacterizer stream = model_->OpenStream(
      view.source_size, view.target_size, view.movement->screen_width(),
      view.movement->screen_height());
  for (std::size_t k = 0; k < 3; ++k) stream.PushDecision(view.history->at(k));
  const StreamEmission mid = stream.Finalize();
  EXPECT_EQ(mid.decision_index, 3u);
  stream.PushDecision(view.history->at(3));
  const StreamEmission later = stream.Finalize();
  EXPECT_EQ(later.decision_index, 4u);

  const matching::DecisionHistory prefix = view.history->Prefix(4);
  const matching::MovementMap empty_slice =
      view.movement->TimeSlice(1.0, 0.0);
  MatcherView prefix_view = view;
  prefix_view.history = &prefix;
  prefix_view.movement = &empty_slice;
  const std::vector<double> batch_proba =
      model_->CharacterizeProba(prefix_view);
  ASSERT_EQ(later.probabilities.size(), batch_proba.size());
  for (std::size_t c = 0; c < batch_proba.size(); ++c) {
    EXPECT_EQ(later.probabilities[c], batch_proba[c]);
  }
}

/// The amortized-O(1) contract, audited by the op counters: no
/// trace-length buffer is ever scanned inside PushDecision (only
/// Finalize's single exactness pass reads the buffers), and the
/// accumulator work per decision is a small constant independent of how
/// deep into the trace the decision lands.
TEST_F(StreamingTest, PerDecisionUpdateCostIsConstant) {
  const MatcherView& view = fixture_->input.matchers[0];
  StreamingCharacterizer stream = model_->OpenStream(
      view.source_size, view.target_size, 1920.0, 1080.0);

  constexpr std::size_t kTrace = 300;
  constexpr std::uint64_t kMaxOpsPerDecision = 8;
  std::uint64_t prev_ops = 0;
  for (std::size_t k = 0; k < kTrace; ++k) {
    // Synthetic trace cycling over pairs (revisits exercise the
    // add/remove consistency path) with strictly increasing timestamps.
    matching::MovementEvent event;
    event.x = static_cast<double>((k * 37) % 1920);
    event.y = static_cast<double>((k * 53) % 1080);
    event.timestamp = static_cast<double>(k);
    event.type = static_cast<matching::MovementType>(k % 4);
    stream.PushMovement(event);

    matching::Decision d;
    d.source = k % view.source_size;
    d.target = (k / 7) % view.target_size;
    d.confidence = 0.1 + 0.8 * static_cast<double>(k % 10) / 10.0;
    d.timestamp = static_cast<double>(k) + 0.5;
    stream.PushDecision(d);

    const StreamCost& cost = stream.cost();
    EXPECT_EQ(cost.trace_buffer_scans, 0u)
        << "decision " << k << " re-scanned the trace";
    const std::uint64_t delta = cost.decision_update_ops - prev_ops;
    EXPECT_LE(delta, kMaxOpsPerDecision) << "decision " << k;
    prev_ops = cost.decision_update_ops;
  }
  EXPECT_EQ(stream.cost().decisions, kTrace);
  EXPECT_EQ(stream.cost().movement_events, kTrace);

  // Finalize accounts its single pass over the append-only buffers.
  stream.Finalize();
  EXPECT_EQ(stream.cost().trace_buffer_scans, 2u * kTrace);
}

/// OpenStream before Fit is a usage error.
TEST_F(StreamingTest, OpenStreamBeforeFitThrows) {
  Mexi unfitted(FastConfig());
  EXPECT_THROW(unfitted.OpenStream(10, 10, 1920.0, 1080.0),
               std::logic_error);
}

/// Defensive edge: Finalize on a stream that has seen nothing is legal
/// and matches the batch answer for an empty trace — a server draining
/// a connection that opened a stream but never sent a decision must not
/// crash or emit garbage.
TEST_F(StreamingTest, FinalizeAfterZeroDecisionsMatchesBatchOnEmptyTrace) {
  const MatcherView& view = fixture_->input.matchers[0];
  StreamingCharacterizer stream = model_->OpenStream(
      view.source_size, view.target_size, view.movement->screen_width(),
      view.movement->screen_height());
  const StreamEmission final = stream.Finalize();
  EXPECT_TRUE(final.is_final);
  EXPECT_EQ(final.decision_index, 0u);

  const matching::DecisionHistory empty_history = view.history->Prefix(0);
  const matching::MovementMap empty_slice = view.movement->TimeSlice(1.0, 0.0);
  MatcherView empty_view = view;
  empty_view.history = &empty_history;
  empty_view.movement = &empty_slice;
  const std::vector<double> batch_proba =
      model_->CharacterizeProba(empty_view);
  ASSERT_EQ(final.probabilities.size(), batch_proba.size());
  for (std::size_t c = 0; c < batch_proba.size(); ++c) {
    EXPECT_EQ(final.probabilities[c], batch_proba[c]) << "label " << c;
  }
  EXPECT_EQ(final.label.ToVector(),
            model_->Characterize(empty_view).ToVector());
}

/// Defensive edge: Finalize twice in a row is idempotent — bitwise
/// identical emissions, no state consumed.
TEST_F(StreamingTest, DoubleFinalizeIsBitwiseIdempotent) {
  const MatcherView& view = fixture_->input.matchers[2];
  ASSERT_GT(view.history->size(), 3u);
  StreamingCharacterizer stream = model_->OpenStream(
      view.source_size, view.target_size, view.movement->screen_width(),
      view.movement->screen_height());
  for (std::size_t k = 0; k < 3; ++k) stream.PushDecision(view.history->at(k));
  const StreamEmission first = stream.Finalize();
  const StreamEmission second = stream.Finalize();
  ExpectBitwiseEqual(first, second);
}

/// Defensive edge: a rejected PushDecision must leave the stream exactly
/// as it was — validation happens before any accumulator mutation, so
/// the next Finalize still describes the accepted prefix bitwise and a
/// subsequent valid push works. Exercises every rejection class.
TEST_F(StreamingTest, RejectedPushLeavesStreamUntouched) {
  const MatcherView& view = fixture_->input.matchers[0];
  ASSERT_GT(view.history->size(), 3u);
  StreamingCharacterizer stream = model_->OpenStream(
      view.source_size, view.target_size, view.movement->screen_width(),
      view.movement->screen_height());
  for (std::size_t k = 0; k < 2; ++k) stream.PushDecision(view.history->at(k));
  const StreamEmission before = stream.Finalize();
  const double last_ts = view.history->at(1).timestamp;

  const double nan = std::numeric_limits<double>::quiet_NaN();
  matching::Decision bad;
  bad.source = 0;
  bad.target = 0;
  bad.confidence = 0.5;
  bad.timestamp = last_ts + 1.0;

  auto expect_rejected = [&stream](const matching::Decision& d) {
    try {
      stream.PushDecision(d);
      FAIL() << "expected StatusError";
    } catch (const robust::StatusError& e) {
      EXPECT_EQ(e.status().code(), robust::StatusCode::kInvalidArgument);
    }
  };

  {
    matching::Decision d = bad;
    d.confidence = nan;
    expect_rejected(d);
  }
  {
    matching::Decision d = bad;
    d.confidence = 1.5;
    expect_rejected(d);
  }
  {
    matching::Decision d = bad;
    d.confidence = -0.25;
    expect_rejected(d);
  }
  {
    matching::Decision d = bad;
    d.timestamp = nan;
    expect_rejected(d);
  }
  {
    matching::Decision d = bad;
    d.timestamp = last_ts - 1.0;  // regressing clock
    expect_rejected(d);
  }
  {
    matching::Decision d = bad;
    d.source = view.source_size;  // off the end of the task
    expect_rejected(d);
  }
  {
    matching::Decision d = bad;
    d.target = view.target_size;
    expect_rejected(d);
  }

  // Nothing leaked into the accumulators: the emission for the accepted
  // prefix is unchanged, bit for bit.
  const StreamEmission after = stream.Finalize();
  ExpectBitwiseEqual(before, after);

  // And the stream still advances on valid input.
  const StreamEmission next = stream.PushDecision(view.history->at(2));
  EXPECT_EQ(next.decision_index, 3u);
  EXPECT_FALSE(next.is_final);
}

}  // namespace
}  // namespace mexi
