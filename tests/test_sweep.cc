// Population-scale sweep: quantile sketches, widened archetype family,
// streamed-aggregation exactness against a naive hold-everything
// computation, shard/thread invariance in exact and fast math, and
// checkpointed abort/resume identity.

#include "core/sweep.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "core/evaluation.h"
#include "matching/similarity.h"
#include "ml/vmath/vmath.h"
#include "parallel/parallel_for.h"
#include "robust/fault_injection.h"
#include "robust/status.h"
#include "schema/generators.h"
#include "sim/study.h"
#include "stats/rng.h"

namespace {

using namespace mexi;
namespace fs = std::filesystem;

// -------------------------------------------------------------------
// QuantileSketch

TEST(QuantileSketch, CountsSumAndExtremesAreExact) {
  QuantileSketch sketch(0.0, 1.0, 10);
  const std::vector<double> values = {0.05, 0.15, 0.25, 0.95, 0.5, -2.0,
                                      3.0};
  for (const double v : values) sketch.Add(v);
  EXPECT_EQ(sketch.count(), values.size());
  // Out-of-range values clamp into [lo, hi] before every accumulator.
  EXPECT_DOUBLE_EQ(sketch.min(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 1.0);
  EXPECT_DOUBLE_EQ(sketch.sum(), 0.05 + 0.15 + 0.25 + 0.95 + 0.5 + 0.0 +
                                     1.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.0), sketch.min());
  EXPECT_DOUBLE_EQ(sketch.Quantile(1.0), sketch.max());
}

TEST(QuantileSketch, QuantilesAreMonotoneAndBinAccurate) {
  QuantileSketch sketch(0.0, 1.0, 100);
  stats::Rng rng(11);
  for (int i = 0; i < 5000; ++i) sketch.Add(rng.Uniform());
  double previous = sketch.Quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double value = sketch.Quantile(q);
    EXPECT_GE(value, previous);
    // Uniform data: the q-quantile is q, up to a bin width + sampling.
    EXPECT_NEAR(value, q, 0.05);
    previous = value;
  }
}

TEST(QuantileSketch, MergeMatchesSingleFold) {
  QuantileSketch all(0.0, 1.0, 32);
  QuantileSketch left(0.0, 1.0, 32);
  QuantileSketch right(0.0, 1.0, 32);
  stats::Rng rng(12);
  for (int i = 0; i < 400; ++i) {
    const double v = rng.Uniform();
    all.Add(v);
    (i < 150 ? left : right).Add(v);
  }
  left.Merge(right);
  // Integer state (bin counts) and min/max are associative-exact, so
  // every quantile answer matches the single-fold sketch bitwise. The
  // double running sum is summed in a different order and may differ in
  // the last bits — which is why the sweep folds in population order
  // instead of merging per-shard partials.
  EXPECT_EQ(left.count(), all.count());
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
  for (double q = 0.0; q <= 1.0; q += 0.1) {
    EXPECT_DOUBLE_EQ(left.Quantile(q), all.Quantile(q));
  }
  EXPECT_NEAR(left.sum(), all.sum(), 1e-9 * std::abs(all.sum()));
}

TEST(QuantileSketch, MergeRejectsShapeMismatch) {
  QuantileSketch a(0.0, 1.0, 32);
  QuantileSketch b(-1.0, 1.0, 32);
  QuantileSketch c(0.0, 1.0, 64);
  EXPECT_THROW(a.Merge(b), robust::StatusError);
  EXPECT_THROW(a.Merge(c), robust::StatusError);
}

TEST(QuantileSketch, SaveLoadRoundTripsBitwise) {
  QuantileSketch sketch(-1.0, 1.0, 64);
  stats::Rng rng(13);
  for (int i = 0; i < 300; ++i) sketch.Add(rng.Gaussian(0.0, 0.4));
  robust::BinaryWriter writer;
  sketch.Save(writer);
  robust::BinaryReader reader(writer.buffer());
  QuantileSketch restored;
  restored.Load(reader);
  EXPECT_EQ(restored, sketch);
}

// -------------------------------------------------------------------
// Widened mixture

TEST(PopulationMix, WeightCoversTheWholeEnumAndTotalSumsIt) {
  const sim::PopulationMix wide = sim::WidePopulationMix();
  double sum = 0.0;
  for (std::size_t a = 0; a < sim::kNumArchetypes; ++a) {
    sum += wide.Weight(static_cast<sim::Archetype>(a));
  }
  EXPECT_DOUBLE_EQ(sum, wide.Total());
  EXPECT_NEAR(wide.Total(), 1.0, 1e-12);
  EXPECT_GT(wide.Weight(sim::Archetype::kSpammerE), 0.0);
  EXPECT_GT(wide.Weight(sim::Archetype::kDrifterF), 0.0);
  EXPECT_GT(wide.Weight(sim::Archetype::kCrossTaskG), 0.0);

  // The paper-default mix gives the sweep archetypes zero weight.
  const sim::PopulationMix paper;
  EXPECT_DOUBLE_EQ(paper.Weight(sim::Archetype::kSpammerE), 0.0);
  EXPECT_DOUBLE_EQ(paper.Weight(sim::Archetype::kDrifterF), 0.0);
  EXPECT_DOUBLE_EQ(paper.Weight(sim::Archetype::kCrossTaskG), 0.0);
}

TEST(PopulationMix, SamplePopulationTracksWideMixtureWeights) {
  const sim::PopulationMix mix = sim::WidePopulationMix();
  stats::Rng rng(77);
  const auto profiles = sim::SamplePopulation(4000, mix, rng);
  std::array<std::size_t, sim::kNumArchetypes> counts{};
  for (const auto& p : profiles) {
    ++counts[static_cast<std::size_t>(p.archetype)];
  }
  for (std::size_t a = 0; a < sim::kNumArchetypes; ++a) {
    const double expected =
        4000.0 * mix.Weight(static_cast<sim::Archetype>(a)) / mix.Total();
    // 4-sigma binomial envelope around the expectation.
    const double sigma = std::sqrt(expected);
    EXPECT_NEAR(static_cast<double>(counts[a]), expected,
                4.0 * sigma + 1.0)
        << sim::ArchetypeName(static_cast<sim::Archetype>(a));
  }
}

TEST(PopulationMix, PaperMixtureNeverDrawsSweepArchetypes) {
  stats::Rng rng(78);
  const auto profiles =
      sim::SamplePopulation(2000, sim::PopulationMix(), rng);
  for (const auto& p : profiles) {
    EXPECT_NE(p.archetype, sim::Archetype::kSpammerE);
    EXPECT_NE(p.archetype, sim::Archetype::kDrifterF);
    EXPECT_NE(p.archetype, sim::Archetype::kCrossTaskG);
    // Paper profiles keep the inert within-trace dynamics defaults that
    // guarantee bitwise-unchanged traces.
    EXPECT_EQ(p.random_declare_rate, 0.0);
    EXPECT_EQ(p.fatigue_rate, 0.0);
    EXPECT_EQ(p.confidence_drift, 0.0);
    EXPECT_EQ(p.task_skill_correlation, 1.0);
  }
}

TEST(PopulationMix, EmptyMixtureThrows) {
  sim::PopulationMix empty;
  empty.expert_a = empty.sloppy_b = empty.narrow_c = 0.0;
  empty.unreliable_d = empty.mixed = 0.0;
  stats::Rng rng(79);
  EXPECT_THROW(sim::SampleArchetype(empty, rng), std::invalid_argument);
  EXPECT_THROW(sim::SamplePopulation(4, empty, rng),
               std::invalid_argument);
}

// -------------------------------------------------------------------
// Archetype-level ground-truth distinguishability

struct ArchetypeStats {
  double mean_precision = 0.0;
  double mean_recall = 0.0;
  double mean_resolution = 0.0;
  double mean_calibration = 0.0;
  double precise_rate = 0.0;
  double thorough_rate = 0.0;
  double correlated_rate = 0.0;
  double calibrated_rate = 0.0;
};

class ArchetypeDistinguishabilityTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kPerArchetype = 40;

  void SetUp() override {
    pair_ = schema::GeneratePurchaseOrderTask(31);
    similarity_ =
        matching::BuildSimilarityMatrix(pair_.source, pair_.target);
    reference_ = matching::MatchMatrix::FromReference(
        pair_.reference, pair_.source.size(), pair_.target.size());
    task_.pair = &pair_;
    task_.similarity = &similarity_;
    task_.reference = &reference_;

    // Thresholds from a paper-mix population (the sweep's protocol).
    stats::Rng rng(32);
    const auto profiles =
        sim::SamplePopulation(80, sim::PopulationMix(), rng);
    std::vector<ExpertMeasures> train;
    for (const auto& profile : profiles) {
      train.push_back(MeasuresFor(profile, rng));
    }
    thresholds_ = FitThresholds(train);
  }

  ExpertMeasures MeasuresFor(const sim::MatcherProfile& profile,
                             stats::Rng& rng) {
    sim::SimulatedTrace trace = sim::SimulateMatcher(task_, profile, rng);
    const matching::DecisionHistory history =
        trace.history.Preprocessed(3, 2.0);
    return ComputeMeasures(history, pair_.source.size(),
                           pair_.target.size(), reference_);
  }

  ArchetypeStats StatsFor(sim::Archetype archetype) {
    ArchetypeStats stats;
    stats::Rng base(33 + static_cast<std::uint64_t>(archetype));
    for (std::size_t i = 0; i < kPerArchetype; ++i) {
      stats::Rng rng = base.Fork(i);
      sim::MatcherProfile profile = sim::SampleProfile(archetype, rng);
      profile = sim::PerTaskProfile(profile, rng);
      const ExpertMeasures m = MeasuresFor(profile, rng);
      const ExpertLabel label = Characterize(m, thresholds_);
      stats.mean_precision += m.precision;
      stats.mean_recall += m.recall;
      stats.mean_resolution += m.resolution;
      stats.mean_calibration += m.calibration;
      stats.precise_rate += label.precise ? 1.0 : 0.0;
      stats.thorough_rate += label.thorough ? 1.0 : 0.0;
      stats.correlated_rate += label.correlated ? 1.0 : 0.0;
      stats.calibrated_rate += label.calibrated ? 1.0 : 0.0;
    }
    const double n = static_cast<double>(kPerArchetype);
    stats.mean_precision /= n;
    stats.mean_recall /= n;
    stats.mean_resolution /= n;
    stats.mean_calibration /= n;
    stats.precise_rate /= n;
    stats.thorough_rate /= n;
    stats.correlated_rate /= n;
    stats.calibrated_rate /= n;
    return stats;
  }

  schema::GeneratedPair pair_;
  matching::MatchMatrix similarity_;
  matching::MatchMatrix reference_;
  sim::SimulationTask task_;
  ExpertThresholds thresholds_;
};

TEST_F(ArchetypeDistinguishabilityTest, SpammerIsImpreciseAndOverconfident) {
  const ArchetypeStats expert = StatsFor(sim::Archetype::kExpertA);
  const ArchetypeStats sloppy = StatsFor(sim::Archetype::kSloppyB);
  const ArchetypeStats spammer = StatsFor(sim::Archetype::kSpammerE);

  // Random rapid-fire declarations: precision collapses below even the
  // sloppy archetype, and the precise bit all but vanishes.
  EXPECT_LT(spammer.mean_precision, sloppy.mean_precision - 0.05);
  EXPECT_LT(spammer.mean_precision, expert.mean_precision - 0.25);
  EXPECT_LT(spammer.precise_rate, expert.precise_rate - 0.5);
  // Pinned-high reported confidence on mostly-wrong matches: strong
  // positive calibration error (overconfidence).
  EXPECT_GT(spammer.mean_calibration, expert.mean_calibration + 0.2);
  EXPECT_GT(spammer.mean_calibration, 0.3);
}

TEST_F(ArchetypeDistinguishabilityTest, DrifterDegradesWithinTheTrace) {
  const ArchetypeStats expert = StatsFor(sim::Archetype::kExpertA);
  const ArchetypeStats drifter = StatsFor(sim::Archetype::kDrifterF);

  // Starts A-like but fatigue widens perception noise and the late
  // confidence drift inflates reported confidence: lower precision,
  // more overconfident, and the cognitive bits (correlated/calibrated)
  // collapse relative to the expert.
  EXPECT_LT(drifter.mean_precision, expert.mean_precision - 0.05);
  EXPECT_GT(drifter.mean_calibration, expert.mean_calibration + 0.05);
  EXPECT_LT(drifter.correlated_rate, expert.correlated_rate - 0.2);
  EXPECT_LT(drifter.calibrated_rate, expert.calibrated_rate - 0.3);
}

TEST_F(ArchetypeDistinguishabilityTest, CrossTaskSitsBetweenExpertAndSloppy) {
  const ArchetypeStats expert = StatsFor(sim::Archetype::kExpertA);
  const ArchetypeStats sloppy = StatsFor(sim::Archetype::kSloppyB);
  const ArchetypeStats cross = StatsFor(sim::Archetype::kCrossTaskG);

  // Mid-skill base blended toward a fresh draw: recall and resolution
  // sit clearly between the expert and the sloppy archetype (precision
  // is non-monotone on this task and not a discriminator for G), and
  // the label bits separate it from both neighbors.
  EXPECT_LT(cross.mean_recall, expert.mean_recall - 0.1);
  EXPECT_GT(cross.mean_recall, sloppy.mean_recall + 0.1);
  EXPECT_LT(cross.mean_resolution, expert.mean_resolution - 0.1);
  EXPECT_GT(cross.mean_resolution, sloppy.mean_resolution + 0.2);
  EXPECT_LT(cross.thorough_rate, expert.thorough_rate - 0.3);
  EXPECT_GT(cross.calibrated_rate, sloppy.calibrated_rate + 0.15);
}

// -------------------------------------------------------------------
// Streamed-aggregation exactness

MexiConfig TinyModelConfig() {
  MexiConfig config;
  config.submatcher_mode = SubmatcherMode::kNone;
  config.seq.lstm.epochs = 1;
  config.seq.lstm.hidden_dim = 8;
  config.seq.lstm.dense_dim = 8;
  config.spa.cnn.epochs = 1;
  config.spa.pretrain_images = 0;
  config.batch_size = 8;
  return config;
}

SweepConfig TinySweepConfig() {
  SweepConfig config;
  config.population = 48;
  config.shard_size = 16;
  config.train_matchers = 10;
  config.seed = 21;
  config.model = TinyModelConfig();
  return config;
}

/// Naive hold-everything computation: simulate the WHOLE population
/// resident, characterize it in one CharacterizeAll call, fold in
/// population order. The sweep's contract is bitwise identity with
/// this. Re-derives the per-matcher streams from the documented seed
/// derivation (sweep matcher stream = SubSeed(4) of the sweep seed).
SweepAggregates NaiveSweep(const SweepConfig& config,
                           const PopulationSweeper& sweeper) {
  sim::StudyConfig train_config;
  train_config.num_matchers = config.train_matchers;
  train_config.seed = config.seed;
  const sim::Study study = sim::BuildPurchaseOrderStudy(train_config);
  sim::SimulationTask task;
  task.pair = &study.task;
  task.similarity = &study.similarity;
  task.reference = &study.reference;
  const std::size_t rows = study.task.source.size();
  const std::size_t cols = study.task.target.size();

  struct Slot {
    sim::Archetype archetype = sim::Archetype::kMixed;
    matching::DecisionHistory history;
    matching::MovementMap movement{1280.0, 800.0};
    ExpertMeasures measures;
    ExpertLabel truth;
  };
  const stats::Rng stream_base(stats::Rng(config.seed).SubSeed(4));
  std::vector<Slot> slots(config.population);
  for (std::size_t i = 0; i < config.population; ++i) {
    stats::Rng rng = stream_base.Fork(i);
    Slot& slot = slots[i];
    slot.archetype = sim::SampleArchetype(config.mix, rng);
    sim::MatcherProfile profile =
        sim::SampleProfile(slot.archetype, rng);
    profile = sim::PerTaskProfile(profile, rng);
    sim::SimulatedTrace trace = sim::SimulateMatcher(task, profile, rng);
    slot.history = trace.history.Preprocessed(3, 2.0);
    slot.movement = std::move(trace.movement);
    slot.measures =
        ComputeMeasures(slot.history, rows, cols, study.reference);
    slot.truth = Characterize(slot.measures, sweeper.thresholds());
  }

  std::vector<MatcherView> views(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    views[i].history = &slots[i].history;
    views[i].movement = &slots[i].movement;
    views[i].source_size = rows;
    views[i].target_size = cols;
  }
  const auto predicted = sweeper.model().CharacterizeAll(views);

  SweepAggregates aggregates;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    aggregates.Fold(slots[i].archetype, slots[i].measures, slots[i].truth,
                    predicted[i], slots[i].history.size());
  }
  return aggregates;
}

class SweepExactnessTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ml::vmath::SetFastMath(false);
    parallel::SetThreads(0);
  }

  /// Sweep aggregate JSON at a given thread count and math mode.
  std::string SweepJson(std::size_t threads, bool fast_math,
                        std::size_t shard_size,
                        const SweepAggregates** naive_check = nullptr) {
    parallel::SetThreads(threads);
    ml::vmath::SetFastMath(fast_math);
    SweepConfig config = TinySweepConfig();
    config.shard_size = shard_size;
    PopulationSweeper sweeper(config);
    sweeper.Run();
    if (naive_check != nullptr) {
      naive_ = NaiveSweep(config, sweeper);
      *naive_check = &naive_;
    }
    return sweeper.aggregates().ToJson();
  }

  SweepAggregates naive_;
};

TEST_F(SweepExactnessTest, MatchesNaiveAndIsShardAndThreadInvariantExact) {
  const SweepAggregates* naive = nullptr;
  const std::string sharded_1t = SweepJson(1, false, 16, &naive);
  // Bitwise identical to the hold-everything computation...
  EXPECT_EQ(sharded_1t, naive->ToJson());
  // ...at 8 threads...
  EXPECT_EQ(sharded_1t, SweepJson(8, false, 16));
  // ...and with the whole population in one shard.
  EXPECT_EQ(sharded_1t, SweepJson(8, false, 48));
}

TEST_F(SweepExactnessTest, MatchesNaiveAndIsShardAndThreadInvariantFast) {
  const SweepAggregates* naive = nullptr;
  const std::string sharded_1t = SweepJson(1, true, 16, &naive);
  EXPECT_EQ(sharded_1t, naive->ToJson());
  EXPECT_EQ(sharded_1t, SweepJson(8, true, 16));
  EXPECT_EQ(sharded_1t, SweepJson(8, true, 48));
}

TEST(SweepAggregates, MergeMatchesPopulationOrderFold) {
  // Synthetic fold inputs; no model needed for Merge/Fold parity.
  stats::Rng rng(55);
  SweepAggregates all;
  SweepAggregates left;
  SweepAggregates right;
  for (int i = 0; i < 200; ++i) {
    ExpertMeasures m;
    m.precision = rng.Uniform();
    m.recall = rng.Uniform();
    m.resolution = rng.Uniform(-1.0, 1.0);
    m.calibration = rng.Uniform(-0.5, 0.5);
    ExpertLabel truth;
    truth.precise = rng.Bernoulli(0.4);
    truth.thorough = rng.Bernoulli(0.4);
    truth.correlated = rng.Bernoulli(0.3);
    truth.calibrated = rng.Bernoulli(0.3);
    ExpertLabel predicted;
    predicted.precise = rng.Bernoulli(0.4);
    predicted.thorough = rng.Bernoulli(0.4);
    predicted.correlated = rng.Bernoulli(0.3);
    predicted.calibrated = rng.Bernoulli(0.3);
    const auto archetype = static_cast<sim::Archetype>(
        rng.UniformIndex(sim::kNumArchetypes));
    const std::size_t decisions = 20 + rng.UniformIndex(80);
    all.Fold(archetype, m, truth, predicted, decisions);
    (i < 90 ? left : right).Fold(archetype, m, truth, predicted,
                                 decisions);
  }
  left.Merge(right);
  // All counting state — totals, per-archetype confusions, full-expert
  // tallies, sketch bins, bucket counts — is associative-exact; the
  // double score sums may differ in the last bits (see the sketch
  // test), so the parity claim here is on the exact parts.
  EXPECT_EQ(left.matchers(), all.matchers());
  EXPECT_EQ(left.decisions(), all.decisions());
  for (std::size_t a = 0; a < sim::kNumArchetypes; ++a) {
    EXPECT_EQ(left.archetype(static_cast<sim::Archetype>(a)),
              all.archetype(static_cast<sim::Archetype>(a)));
  }
  EXPECT_EQ(left.precision_sketch().count(),
            all.precision_sketch().count());
  EXPECT_DOUBLE_EQ(left.precision_sketch().Quantile(0.5),
                   all.precision_sketch().Quantile(0.5));
  EXPECT_DOUBLE_EQ(left.resolution_sketch().Quantile(0.9),
                   all.resolution_sketch().Quantile(0.9));
  for (std::size_t b = 0; b < kCalibrationBuckets; ++b) {
    EXPECT_EQ(left.calibration_buckets()[b].count,
              all.calibration_buckets()[b].count);
    EXPECT_NEAR(left.calibration_buckets()[b].sum_confidence,
                all.calibration_buckets()[b].sum_confidence, 1e-12);
  }
}

TEST(SweepAggregates, SaveLoadRoundTripsBitwise) {
  stats::Rng rng(56);
  SweepAggregates aggregates;
  for (int i = 0; i < 64; ++i) {
    ExpertMeasures m;
    m.precision = rng.Uniform();
    m.recall = rng.Uniform();
    m.resolution = rng.Uniform(-1.0, 1.0);
    m.calibration = rng.Uniform(-0.5, 0.5);
    ExpertLabel truth;
    truth.precise = rng.Bernoulli(0.5);
    ExpertLabel predicted;
    predicted.precise = rng.Bernoulli(0.5);
    aggregates.Fold(static_cast<sim::Archetype>(
                        rng.UniformIndex(sim::kNumArchetypes)),
                    m, truth, predicted, 10 + rng.UniformIndex(50));
  }
  robust::BinaryWriter writer;
  aggregates.Save(writer);
  robust::BinaryReader reader(writer.buffer());
  SweepAggregates restored;
  restored.Load(reader);
  EXPECT_EQ(restored, aggregates);
  EXPECT_EQ(restored.ToJson(), aggregates.ToJson());
}

// -------------------------------------------------------------------
// Checkpointed abort / resume

class SweepResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("sweep_resume_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(dir_);
    parallel::SetThreads(1);
  }
  void TearDown() override {
    robust::FaultInjector::Global().Clear();
    parallel::SetThreads(0);
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

TEST_F(SweepResumeTest, AbortedSweepResumesBitwiseIdentically) {
  SweepConfig config = TinySweepConfig();

  // Uninterrupted reference (no checkpointing).
  PopulationSweeper reference(config);
  const std::string expected = reference.Run().ToJson();

  // Aborted run: the injected abort fires after shard 2's checkpoint
  // committed, so two shards of folded work are durable.
  config.checkpoint_dir = dir_.string();
  robust::FaultInjector::Global().Configure("abort@sweep_shard:2");
  PopulationSweeper aborted(config);
  try {
    aborted.Run();
    FAIL() << "expected the injected abort to throw";
  } catch (const robust::StatusError& error) {
    EXPECT_EQ(error.status().code(), robust::StatusCode::kAborted);
  }
  robust::FaultInjector::Global().Clear();
  EXPECT_EQ(aborted.next_shard(), 2u);

  // Resume: loads the two committed shards, replays the third.
  config.resume = true;
  PopulationSweeper resumed(config);
  EXPECT_EQ(resumed.next_shard(), 2u);
  EXPECT_EQ(resumed.Run().ToJson(), expected);
}

TEST_F(SweepResumeTest, ResumeRejectsConfigMismatch) {
  SweepConfig config = TinySweepConfig();
  config.checkpoint_dir = dir_.string();
  robust::FaultInjector::Global().Configure("abort@sweep_shard:1");
  PopulationSweeper aborted(config);
  EXPECT_THROW(aborted.Run(), robust::StatusError);
  robust::FaultInjector::Global().Clear();

  // A resumed run under a different population must refuse the
  // checkpoint instead of blending incompatible aggregates.
  SweepConfig other = config;
  other.resume = true;
  other.population = 64;
  try {
    PopulationSweeper sweeper(other);
    FAIL() << "expected the config-mismatch rejection to throw";
  } catch (const robust::StatusError& error) {
    EXPECT_EQ(error.status().code(),
              robust::StatusCode::kInvalidArgument);
  }
}

TEST_F(SweepResumeTest, FreshRunDiscardsStaleCheckpoints) {
  SweepConfig config = TinySweepConfig();
  config.checkpoint_dir = dir_.string();
  robust::FaultInjector::Global().Configure("abort@sweep_shard:1");
  PopulationSweeper aborted(config);
  EXPECT_THROW(aborted.Run(), robust::StatusError);
  robust::FaultInjector::Global().Clear();

  // Without --resume the stale checkpoint is discarded and the full
  // population recomputed; a fresh construction starts at shard 0.
  PopulationSweeper fresh(config);
  EXPECT_EQ(fresh.next_shard(), 0u);
}

}  // namespace
