#include "robust/status.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace mexi::robust {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_NO_THROW(ThrowIfError(status));
  EXPECT_NO_THROW(ThrowIfError(Status::Ok()));
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status =
      Status::Error(StatusCode::kCorruption, "checksum mismatch");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(status.message(), "checksum mismatch");
}

TEST(StatusTest, ToStringIncludesContext) {
  Status status = Status::Error(StatusCode::kParseError, "bad number");
  status.WithFile("data.csv").WithLine(17);
  const std::string rendered = status.ToString();
  EXPECT_NE(rendered.find("parse"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("bad number"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("data.csv"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("17"), std::string::npos) << rendered;
}

TEST(StatusTest, CodeNamesAreDistinct) {
  EXPECT_STRNE(StatusCodeName(StatusCode::kCorruption),
               StatusCodeName(StatusCode::kDivergence));
  EXPECT_STRNE(StatusCodeName(StatusCode::kNotFound),
               StatusCodeName(StatusCode::kIoError));
}

TEST(StatusErrorTest, IsCatchableAsRuntimeError) {
  // The whole point of deriving from std::runtime_error: every
  // pre-existing catch site keeps working after the migration.
  bool caught = false;
  try {
    ThrowStatus(StatusCode::kIoError, "disk on fire");
  } catch (const std::runtime_error& e) {
    caught = true;
    EXPECT_NE(std::string(e.what()).find("disk on fire"),
              std::string::npos);
  }
  EXPECT_TRUE(caught);
}

TEST(StatusErrorTest, PreservesStructuredStatus) {
  try {
    ThrowStatus(StatusCode::kDivergence, "loss is NaN");
    FAIL() << "ThrowStatus did not throw";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kDivergence);
    EXPECT_EQ(e.status().message(), "loss is NaN");
  }
}

TEST(StatusErrorTest, ThrowIfErrorPropagates) {
  const Status status = Status::Error(StatusCode::kNotFound, "gone");
  EXPECT_THROW(ThrowIfError(status), StatusError);
}

}  // namespace
}  // namespace mexi::robust
