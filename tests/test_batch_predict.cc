// Batch-vs-single identity suite for the batched inference engine.
//
// The engine's contract (DESIGN.md "Batched inference & lane packing"):
// in exact mode, every batched Predict is *bitwise identical per trace*
// to the single-trace path at every batch size and thread count; in
// fast mode, batched-fast equals single-fast bitwise and stays within
// the vmath ULP envelope of exact.

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/mexi.h"
#include "ml/gradient_boosting.h"
#include "ml/kernels.h"
#include "ml/logistic_regression.h"
#include "ml/matrix.h"
#include "ml/mlp.h"
#include "ml/nn/cnn.h"
#include "ml/nn/lstm.h"
#include "ml/random_forest.h"
#include "ml/vmath/vmath.h"
#include "parallel/parallel_for.h"
#include "stats/rng.h"
#include "test_fixtures.h"

namespace mexi {
namespace {

const std::size_t kBatchSizes[] = {1, 2, 7, 64};

/// RAII guard: force fast math on/off, restore the default after.
class FastMathGuard {
 public:
  explicit FastMathGuard(bool on) { ml::vmath::SetFastMath(on); }
  ~FastMathGuard() { ml::vmath::SetFastMath(false); }
};

class ThreadGuard {
 public:
  explicit ThreadGuard(std::size_t n) { parallel::SetThreads(n); }
  ~ThreadGuard() { parallel::SetThreads(1); }
};

// ---------------------------------------------------------------------
// Kernel layer: GemmAccum vs GemvAccum vs the MatMul oracle.

TEST(GemmAccumTest, BitwiseMatchesPerLaneGemv) {
  stats::Rng rng(11);
  const std::size_t batch = 5, m = 13, n = 9;
  const std::size_t ldx = m + 3, ldy = n + 2;  // strided lanes
  std::vector<double> x(batch * ldx), w(m * n), y(batch * ldy);
  for (auto& v : x) v = rng.Bernoulli(0.2) ? 0.0 : rng.Gaussian(0.0, 1.0);
  for (auto& v : w) v = rng.Gaussian(0.0, 1.0);
  for (auto& v : y) v = rng.Gaussian(0.0, 0.5);

  std::vector<double> y_single = y;
  for (std::size_t b = 0; b < batch; ++b) {
    ml::kernels::GemvAccum(x.data() + b * ldx, m, w.data(), n,
                           y_single.data() + b * ldy);
  }
  std::vector<double> y_batch = y;
  ml::kernels::GemmAccum(x.data(), batch, m, ldx, w.data(), n, n,
                         y_batch.data(), ldy);
  ASSERT_EQ(0, std::memcmp(y_single.data(), y_batch.data(),
                           y_batch.size() * sizeof(double)));
}

TEST(GemmAccumTest, BitwiseMatchesMatMulOracle) {
  stats::Rng rng(12);
  const std::size_t batch = 17, m = 31, n = 23;
  ml::Matrix a(batch, m), b(m, n);
  for (std::size_t i = 0; i < batch; ++i) {
    for (std::size_t k = 0; k < m; ++k) {
      a(i, k) = rng.Bernoulli(0.15) ? 0.0 : rng.Gaussian(0.0, 1.0);
    }
  }
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t j = 0; j < n; ++j) b(k, j) = rng.Gaussian(0.0, 1.0);
  }
  const ml::Matrix oracle = a.MatMul(b);

  std::vector<double> y(batch * n, 0.0);
  ml::kernels::GemmAccum(&a(0, 0), batch, m, m, &b(0, 0), n, n, y.data(),
                         n);
  for (std::size_t i = 0; i < batch; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(oracle(i, j), y[i * n + j]) << i << "," << j;
    }
  }
}

// ---------------------------------------------------------------------
// LSTM: ragged lengths (including empty) across batch sizes and modes.

ml::LstmSequenceModel::Config LstmConfig() {
  ml::LstmSequenceModel::Config config;
  config.input_dim = 2;
  config.hidden_dim = 6;
  config.dense_dim = 8;
  config.num_labels = 2;
  config.dropout = 0.0;
  config.epochs = 4;
  config.batch_size = 4;
  config.seed = 3;
  return config;
}

std::vector<ml::Sequence> MakeSequences(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<ml::Sequence> sequences;
  for (std::size_t i = 0; i < n; ++i) {
    // Ragged on purpose; a few empty sequences exercise the
    // zero-state lane path.
    const std::size_t length = i % 11 == 3 ? 0 : 1 + rng.UniformIndex(20);
    ml::Sequence seq;
    for (std::size_t t = 0; t < length; ++t) {
      seq.push_back({rng.Gaussian(0.5, 0.3), rng.Uniform(0.0, 1.0)});
    }
    sequences.push_back(std::move(seq));
  }
  return sequences;
}

ml::LstmSequenceModel FittedLstm() {
  std::vector<ml::Sequence> sequences = MakeSequences(24, 7);
  std::vector<std::vector<double>> targets;
  stats::Rng rng(8);
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    targets.push_back({rng.Bernoulli(0.5) ? 1.0 : 0.0,
                       rng.Bernoulli(0.5) ? 1.0 : 0.0});
  }
  ml::LstmSequenceModel model(LstmConfig());
  model.Fit(sequences, targets);
  return model;
}

TEST(LstmBatchTest, ExactModeBitwiseAtEveryBatchSize) {
  ml::LstmSequenceModel model = FittedLstm();
  for (std::size_t batch : kBatchSizes) {
    const std::vector<ml::Sequence> sequences = MakeSequences(batch, 90);
    const auto batched = model.PredictBatch(sequences);
    ASSERT_EQ(batched.size(), batch);
    for (std::size_t i = 0; i < batch; ++i) {
      const auto single = model.Predict(sequences[i]);
      ASSERT_EQ(single.size(), batched[i].size());
      for (std::size_t c = 0; c < single.size(); ++c) {
        EXPECT_EQ(single[c], batched[i][c])
            << "batch=" << batch << " lane=" << i << " label=" << c;
      }
    }
  }
}

TEST(LstmBatchTest, FastModeBitwiseMatchesSingleFastAndBoundsExact) {
  ml::LstmSequenceModel model = FittedLstm();
  const std::vector<ml::Sequence> sequences = MakeSequences(7, 91);
  std::vector<std::vector<double>> exact;
  for (const auto& seq : sequences) exact.push_back(model.Predict(seq));

  FastMathGuard fast(true);
  const auto batched = model.PredictBatch(sequences);
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    const auto single = model.Predict(sequences[i]);
    for (std::size_t c = 0; c < single.size(); ++c) {
      EXPECT_EQ(single[c], batched[i][c]) << i << "," << c;
      // ULP-bounded transcendentals keep fast within a loose absolute
      // envelope of exact on a [0, 1] output.
      EXPECT_NEAR(exact[i][c], batched[i][c], 1e-6) << i << "," << c;
    }
  }
}

TEST(LstmBatchTest, WorkspaceReuseAcrossUnevenChunks) {
  ml::LstmSequenceModel model = FittedLstm();
  ml::LstmSequenceModel::PredictBatchWorkspace ws;
  for (std::size_t batch : {std::size_t{5}, std::size_t{2},
                            std::size_t{9}}) {
    const std::vector<ml::Sequence> sequences = MakeSequences(batch, batch);
    const auto batched = model.PredictBatch(sequences, ws);
    for (std::size_t i = 0; i < batch; ++i) {
      EXPECT_EQ(model.Predict(sequences[i]), batched[i]);
    }
  }
}

// ---------------------------------------------------------------------
// CNN: batched head vs per-image Predict.

ml::CnnImageModel::Config CnnConfig() {
  ml::CnnImageModel::Config config;
  config.image_rows = 10;
  config.image_cols = 12;
  config.conv1_filters = 2;
  config.conv2_filters = 3;
  config.dense_dim = 8;
  config.num_labels = 2;
  config.epochs = 2;
  config.batch_size = 4;
  config.seed = 5;
  return config;
}

std::vector<ml::Image> MakeImages(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<ml::Image> images;
  for (std::size_t i = 0; i < n; ++i) {
    ml::Image image(10, 12, 0.0);
    for (std::size_t r = 0; r < 10; ++r) {
      for (std::size_t c = 0; c < 12; ++c) {
        image(r, c) = rng.Bernoulli(0.5) ? 0.0 : rng.Uniform(0.0, 1.0);
      }
    }
    images.push_back(std::move(image));
  }
  return images;
}

TEST(CnnBatchTest, ExactAndFastModesMatchSingle) {
  const std::vector<ml::Image> train = MakeImages(12, 6);
  std::vector<std::vector<double>> targets;
  stats::Rng rng(9);
  for (std::size_t i = 0; i < train.size(); ++i) {
    targets.push_back({rng.Bernoulli(0.5) ? 1.0 : 0.0,
                       rng.Bernoulli(0.5) ? 1.0 : 0.0});
  }
  ml::CnnImageModel model(CnnConfig());
  model.Fit(train, targets);

  for (std::size_t batch : kBatchSizes) {
    const std::vector<ml::Image> images = MakeImages(batch, 40 + batch);
    const auto batched = model.PredictBatch(images);
    for (std::size_t i = 0; i < batch; ++i) {
      EXPECT_EQ(model.Predict(images[i]), batched[i]) << batch << "," << i;
    }
  }
  FastMathGuard fast(true);
  const std::vector<ml::Image> images = MakeImages(7, 77);
  const auto batched = model.PredictBatch(images);
  for (std::size_t i = 0; i < images.size(); ++i) {
    EXPECT_EQ(model.Predict(images[i]), batched[i]) << i;
  }
}

// ---------------------------------------------------------------------
// Classifier layer: every overridden PredictProbaBatch (and the base
// default loop) reproduces per-row PredictProba bitwise.

TEST(ClassifierBatchTest, BatchMatchesPerRowAcrossModels) {
  stats::Rng rng(21);
  ml::Dataset train;
  for (std::size_t i = 0; i < 60; ++i) {
    const int label = static_cast<int>(i % 2);
    const double cx = label == 1 ? 1.5 : -1.5;
    train.Add({rng.Gaussian(cx, 1.0), rng.Gaussian(-cx, 1.0),
               rng.Gaussian(0.0, 1.0)},
              label);
  }
  std::vector<std::vector<double>> rows;
  for (std::size_t i = 0; i < 64; ++i) {
    rows.push_back({rng.Gaussian(0.0, 2.0), rng.Gaussian(0.0, 2.0),
                    rng.Gaussian(0.0, 2.0)});
  }

  std::vector<std::unique_ptr<ml::BinaryClassifier>> models;
  models.push_back(std::make_unique<ml::MlpClassifier>());
  models.push_back(std::make_unique<ml::GradientBoosting>());
  models.push_back(std::make_unique<ml::RandomForest>());
  models.push_back(std::make_unique<ml::LogisticRegression>());
  for (auto& model : models) {
    model->Fit(train);
    for (std::size_t count : kBatchSizes) {
      const std::vector<std::vector<double>> chunk(rows.begin(),
                                                   rows.begin() + count);
      const std::vector<double> batched = model->PredictProbaBatch(chunk);
      ASSERT_EQ(batched.size(), count);
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(model->PredictProba(chunk[i]), batched[i])
            << model->Name() << " row " << i;
      }
    }
  }
}

TEST(ClassifierBatchTest, EmptyAndUnfittedEdgeCases) {
  ml::MlpClassifier model;
  EXPECT_THROW(model.PredictProbaBatch({{0.0}}), std::logic_error);
  stats::Rng rng(3);
  ml::Dataset train;
  for (std::size_t i = 0; i < 20; ++i) {
    train.Add({rng.Gaussian(i % 2 ? 1.0 : -1.0, 0.5)},
              static_cast<int>(i % 2));
  }
  model.Fit(train);
  EXPECT_TRUE(model.PredictProbaBatch({}).empty());
}

// ---------------------------------------------------------------------
// End to end: Mexi::CharacterizeAll through the batched engine.

MexiConfig BatchedFastConfig(std::size_t batch_size) {
  MexiConfig config;
  config.submatcher_mode = SubmatcherMode::kNone;
  config.seq.lstm.epochs = 3;
  config.seq.lstm.hidden_dim = 8;
  config.seq.lstm.dense_dim = 8;
  config.spa.cnn.epochs = 2;
  config.spa.pretrain_images = 8;
  config.spa.pretrain_epochs = 1;
  config.batch_size = batch_size;
  return config;
}

class MexiBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = testing::MakeSmallPoFixture(18, 2024).release();
    const auto measures = ComputeAllMeasures(fixture_->input);
    const ExpertThresholds thresholds = FitThresholds(measures);
    labels_ = new std::vector<ExpertLabel>(
        LabelsFromMeasures(measures, thresholds));
    mexi_ = new Mexi(BatchedFastConfig(5));
    mexi_->Fit(fixture_->input.matchers, *labels_, fixture_->input.context);
  }
  static void TearDownTestSuite() {
    delete mexi_;
    delete labels_;
    delete fixture_;
    mexi_ = nullptr;
    labels_ = nullptr;
    fixture_ = nullptr;
  }
  static testing::StudyFixture* fixture_;
  static std::vector<ExpertLabel>* labels_;
  static Mexi* mexi_;
};

testing::StudyFixture* MexiBatchTest::fixture_ = nullptr;
std::vector<ExpertLabel>* MexiBatchTest::labels_ = nullptr;
Mexi* MexiBatchTest::mexi_ = nullptr;

TEST_F(MexiBatchTest, BatchedCharacterizeAllMatchesPerTrace) {
  std::vector<ExpertLabel> single;
  for (const auto& view : fixture_->input.matchers) {
    single.push_back(mexi_->Characterize(view));
  }
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    ThreadGuard guard(threads);
    const auto batched = mexi_->CharacterizeAll(fixture_->input.matchers);
    ASSERT_EQ(batched.size(), single.size());
    for (std::size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(single[i], batched[i]) << threads << " threads, trace " << i;
    }
  }
}

TEST_F(MexiBatchTest, FastModeBatchedMatchesFastPerTrace) {
  FastMathGuard fast(true);
  std::vector<ExpertLabel> single;
  for (const auto& view : fixture_->input.matchers) {
    single.push_back(mexi_->Characterize(view));
  }
  ThreadGuard guard(8);
  const auto batched = mexi_->CharacterizeAll(fixture_->input.matchers);
  for (std::size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(single[i], batched[i]) << "trace " << i;
  }
}

TEST_F(MexiBatchTest, BatchSizeOneFallsBackToLegacyPath) {
  Mexi narrow(BatchedFastConfig(1));
  narrow.Fit(fixture_->input.matchers, *labels_, fixture_->input.context);
  const auto via_all = narrow.CharacterizeAll(fixture_->input.matchers);
  for (std::size_t i = 0; i < fixture_->input.matchers.size(); ++i) {
    EXPECT_EQ(narrow.Characterize(fixture_->input.matchers[i]), via_all[i]);
  }
}

}  // namespace
}  // namespace mexi
