#include "core/expert_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mexi {
namespace {

/// The paper's Table I history (0-based indices).
matching::DecisionHistory PaperHistory() {
  matching::DecisionHistory h;
  h.Add({2, 3, 1.0, 3.0});    // M34
  h.Add({0, 0, 0.9, 8.0});    // M11
  h.Add({0, 1, 0.5, 15.0});   // M12
  h.Add({0, 0, 0.5, 16.0});   // M11 revisited
  h.Add({1, 0, 0.45, 34.0});  // M21
  return h;
}

matching::MatchMatrix PaperReference() {
  return matching::MatchMatrix::FromReference(
      {{0, 0}, {0, 1}, {1, 2}, {2, 3}}, 4, 4);
}

TEST(ExpertMeasuresTest, PaperExampleEndToEnd) {
  const ExpertMeasures m =
      ComputeMeasures(PaperHistory(), 4, 4, PaperReference());
  // Section II-B: P = R = 3/4; resolution 1.0 with p = 0.5; the mean
  // confidence is 0.67, so calibration is 0.67 - 0.75 = -0.08 (the paper
  // prints "-0.12" but its own arithmetic, 0.67 - 0.75, gives -0.08).
  EXPECT_DOUBLE_EQ(m.precision, 0.75);
  EXPECT_DOUBLE_EQ(m.recall, 0.75);
  EXPECT_DOUBLE_EQ(m.resolution, 1.0);
  EXPECT_DOUBLE_EQ(m.resolution_pvalue, 0.5);
  EXPECT_NEAR(m.calibration, -0.08, 1e-12);
}

TEST(ExpertMeasuresTest, PaperExampleCharacterization) {
  const ExpertMeasures m =
      ComputeMeasures(PaperHistory(), 4, 4, PaperReference());
  ExpertThresholds t;  // delta_p = delta_r = 0.5
  t.delta_res = 0.5;
  t.delta_cal = 0.205;  // the paper's 20th percentile
  const ExpertLabel label = Characterize(m, t);
  EXPECT_TRUE(label.precise);
  EXPECT_TRUE(label.thorough);
  // Resolution 1.0 passes the threshold but not the significance gate.
  EXPECT_FALSE(label.correlated);
  // |Cal| = 0.08 < 0.205 -> calibrated.
  EXPECT_TRUE(label.calibrated);
}

TEST(ThresholdsTest, FitUsesPercentiles) {
  std::vector<ExpertMeasures> train;
  for (int i = 0; i < 10; ++i) {
    ExpertMeasures m;
    m.resolution = 0.1 * static_cast<double>(i);   // 0 .. 0.9
    m.calibration = 0.05 * static_cast<double>(i);  // 0 .. 0.45
    train.push_back(m);
  }
  const ExpertThresholds t = FitThresholds(train);
  // 80th percentile of 0..0.9 (linear interp): 0.72.
  EXPECT_NEAR(t.delta_res, 0.72, 1e-12);
  // 20th percentile of |cal| 0..0.45: 0.09.
  EXPECT_NEAR(t.delta_cal, 0.09, 1e-12);
  EXPECT_DOUBLE_EQ(t.delta_p, 0.5);
  EXPECT_DOUBLE_EQ(t.delta_r, 0.5);
  EXPECT_THROW(FitThresholds({}), std::invalid_argument);
}

TEST(ExpertLabelTest, VectorRoundTrip) {
  for (int bits = 0; bits < 16; ++bits) {
    std::vector<int> v{(bits >> 0) & 1, (bits >> 1) & 1, (bits >> 2) & 1,
                       (bits >> 3) & 1};
    const ExpertLabel label = ExpertLabel::FromVector(v);
    EXPECT_EQ(label.ToVector(), v);
    EXPECT_EQ(label.Count(), v[0] + v[1] + v[2] + v[3]);
    EXPECT_EQ(label.IsFullExpert(), bits == 15);
  }
  EXPECT_THROW(ExpertLabel::FromVector({1, 0}), std::invalid_argument);
}

TEST(ExpertLabelTest, CharacteristicNamesOrder) {
  const auto& names = CharacteristicNames();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "precise");
  EXPECT_EQ(names[3], "calibrated");
}

TEST(CharacterizeTest, CalibrationUsesAbsoluteValue) {
  ExpertMeasures over, under;
  over.calibration = 0.15;
  under.calibration = -0.15;
  ExpertThresholds t;
  t.delta_cal = 0.2;
  EXPECT_TRUE(Characterize(over, t).calibrated);
  EXPECT_TRUE(Characterize(under, t).calibrated);
  t.delta_cal = 0.1;
  EXPECT_FALSE(Characterize(over, t).calibrated);
  EXPECT_FALSE(Characterize(under, t).calibrated);
}

TEST(CharacterizeTest, CorrelatedNeedsSignificance) {
  ExpertMeasures m;
  m.resolution = 0.9;
  m.resolution_pvalue = 0.2;
  ExpertThresholds t;
  t.delta_res = 0.5;
  EXPECT_FALSE(Characterize(m, t).correlated);
  m.resolution_pvalue = 0.01;
  EXPECT_TRUE(Characterize(m, t).correlated);
}

TEST(AccumulatedCurvesTest, PaperHistoryStepByStep) {
  const AccumulatedCurves curves =
      ComputeAccumulatedCurves(PaperHistory(), 4, 4, PaperReference());
  ASSERT_EQ(curves.precision.size(), 5u);
  // After decision 1 (M34, correct): P = 1, R = 1/4.
  EXPECT_DOUBLE_EQ(curves.precision[0], 1.0);
  EXPECT_DOUBLE_EQ(curves.recall[0], 0.25);
  // After all 5: P = R = 0.75 (matches ComputeMeasures).
  EXPECT_DOUBLE_EQ(curves.precision[4], 0.75);
  EXPECT_DOUBLE_EQ(curves.recall[4], 0.75);
  EXPECT_NEAR(curves.mean_confidence[4], 0.67, 1e-12);
  EXPECT_NEAR(curves.calibration[4], -0.08, 1e-12);
}

TEST(AccumulatedCurvesTest, RecallIsNonDecreasingWithoutRetractions) {
  matching::DecisionHistory h;
  h.Add({0, 0, 0.9, 1.0});
  h.Add({1, 1, 0.8, 2.0});
  h.Add({2, 2, 0.7, 3.0});
  const auto ref =
      matching::MatchMatrix::FromReference({{0, 0}, {1, 1}, {2, 2}}, 3, 3);
  const AccumulatedCurves curves = ComputeAccumulatedCurves(h, 3, 3, ref);
  for (std::size_t i = 1; i < curves.recall.size(); ++i) {
    EXPECT_GE(curves.recall[i], curves.recall[i - 1]);
  }
}

TEST(AccumulatedCurvesTest, EmptyHistory) {
  const AccumulatedCurves curves = ComputeAccumulatedCurves(
      matching::DecisionHistory(), 2, 2, matching::MatchMatrix(2, 2));
  EXPECT_TRUE(curves.precision.empty());
}

}  // namespace
}  // namespace mexi
