#include "stats/pca.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace mexi::stats {
namespace {

TEST(SymmetricEigenTest, DiagonalMatrix) {
  std::vector<double> values;
  std::vector<std::vector<double>> vectors;
  SymmetricEigen({{3.0, 0.0}, {0.0, 1.0}}, &values, &vectors);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_NEAR(values[0], 3.0, 1e-10);
  EXPECT_NEAR(values[1], 1.0, 1e-10);
  EXPECT_NEAR(std::fabs(vectors[0][0]), 1.0, 1e-8);
  EXPECT_NEAR(std::fabs(vectors[1][1]), 1.0, 1e-8);
}

TEST(SymmetricEigenTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  std::vector<double> values;
  std::vector<std::vector<double>> vectors;
  SymmetricEigen({{2.0, 1.0}, {1.0, 2.0}}, &values, &vectors);
  EXPECT_NEAR(values[0], 3.0, 1e-10);
  EXPECT_NEAR(values[1], 1.0, 1e-10);
  // Top eigenvector is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(vectors[0][0]), std::sqrt(0.5), 1e-8);
  EXPECT_NEAR(std::fabs(vectors[0][1]), std::sqrt(0.5), 1e-8);
}

TEST(SymmetricEigenTest, EigenvectorsAreOrthonormal) {
  Rng rng(5);
  const std::size_t n = 6;
  std::vector<std::vector<double>> m(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      m[i][j] = m[j][i] = rng.Gaussian();
    }
  }
  std::vector<double> values;
  std::vector<std::vector<double>> vectors;
  SymmetricEigen(m, &values, &vectors);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      double dot = 0.0;
      for (std::size_t d = 0; d < n; ++d) dot += vectors[a][d] * vectors[b][d];
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(SymmetricEigenTest, TraceIsPreserved) {
  std::vector<double> values;
  std::vector<std::vector<double>> vectors;
  SymmetricEigen({{4.0, 1.0, 0.5}, {1.0, 3.0, 0.2}, {0.5, 0.2, 2.0}},
                 &values, &vectors);
  EXPECT_NEAR(values[0] + values[1] + values[2], 9.0, 1e-9);
  EXPECT_GE(values[0], values[1]);
  EXPECT_GE(values[1], values[2]);
}

TEST(SymmetricEigenTest, RejectsNonSquare) {
  std::vector<double> values;
  std::vector<std::vector<double>> vectors;
  EXPECT_THROW(SymmetricEigen({{1.0, 2.0}}, &values, &vectors),
               std::invalid_argument);
}

TEST(PcaTest, RankOneDataConcentratesVariance) {
  // All rows are multiples of one direction.
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 10; ++i) {
    const double scale = static_cast<double>(i);
    rows.push_back({scale * 1.0, scale * 2.0, scale * 3.0});
  }
  const PcaResult pca = Pca(rows);
  EXPECT_NEAR(pca.explained_variance_ratio[0], 1.0, 1e-8);
  EXPECT_NEAR(pca.explained_variance_ratio[1], 0.0, 1e-8);
}

TEST(PcaTest, IsotropicDataSpreadsVariance) {
  Rng rng(7);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 2000; ++i) {
    rows.push_back({rng.Gaussian(), rng.Gaussian()});
  }
  const PcaResult pca = Pca(rows);
  EXPECT_NEAR(pca.explained_variance_ratio[0], 0.5, 0.05);
}

TEST(PcaTest, RatiosSumToOne) {
  Rng rng(8);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 50; ++i) {
    rows.push_back({rng.Gaussian(), 2.0 * rng.Gaussian(), rng.Uniform()});
  }
  const PcaResult pca = Pca(rows);
  double total = 0.0;
  for (double r : pca.explained_variance_ratio) total += r;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PcaTest, DegenerateInputs) {
  EXPECT_TRUE(Pca({}).eigenvalues.empty());
  EXPECT_THROW(Pca({{1.0, 2.0}, {1.0}}), std::invalid_argument);
}

}  // namespace
}  // namespace mexi::stats
