#include "ml/nn/cnn.h"

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace mexi::ml {
namespace {

CnnImageModel::Config TinyConfig() {
  CnnImageModel::Config config;
  config.image_rows = 12;
  config.image_cols = 16;
  config.conv1_filters = 3;
  config.conv2_filters = 4;
  config.dense_dim = 8;
  config.num_labels = 2;
  config.epochs = 25;
  config.batch_size = 4;
  config.adam.learning_rate = 0.005;
  config.seed = 5;
  return config;
}

/// Images with a bright blob on the left (label 0 = {1,0}) or right
/// (label 1 = {0,1}); second label marks top vs bottom.
void MakeData(std::size_t n, std::uint64_t seed,
              const CnnImageModel::Config& config,
              std::vector<Image>* images,
              std::vector<std::vector<double>>* targets) {
  stats::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const bool right = rng.Bernoulli(0.5);
    const bool bottom = rng.Bernoulli(0.5);
    Image image(config.image_rows, config.image_cols, 0.0);
    const std::size_t cx = right ? 3 * config.image_cols / 4
                                 : config.image_cols / 4;
    const std::size_t cy = bottom ? 3 * config.image_rows / 4
                                  : config.image_rows / 4;
    for (int dy = -2; dy <= 2; ++dy) {
      for (int dx = -2; dx <= 2; ++dx) {
        const long y = static_cast<long>(cy) + dy;
        const long x = static_cast<long>(cx) + dx;
        if (y < 0 || x < 0 ||
            y >= static_cast<long>(config.image_rows) ||
            x >= static_cast<long>(config.image_cols)) {
          continue;
        }
        image(static_cast<std::size_t>(y), static_cast<std::size_t>(x)) =
            rng.Uniform(0.6, 1.0);
      }
    }
    images->push_back(std::move(image));
    targets->push_back({right ? 1.0 : 0.0, bottom ? 1.0 : 0.0});
  }
}

TEST(CnnTest, LearnsBlobPosition) {
  const auto config = TinyConfig();
  std::vector<Image> images;
  std::vector<std::vector<double>> targets;
  MakeData(60, 11, config, &images, &targets);

  CnnImageModel model(config);
  model.Fit(images, targets);
  EXPECT_TRUE(model.fitted());

  std::vector<Image> test_images;
  std::vector<std::vector<double>> test_targets;
  MakeData(30, 12, config, &test_images, &test_targets);
  int correct = 0;
  for (std::size_t i = 0; i < test_images.size(); ++i) {
    const auto probs = model.Predict(test_images[i]);
    correct += (probs[0] > 0.5) == (test_targets[i][0] > 0.5);
    correct += (probs[1] > 0.5) == (test_targets[i][1] > 0.5);
  }
  EXPECT_GT(correct, 48);  // > 80% over 60 label decisions
}

TEST(CnnTest, FineTuningKeepsWorking) {
  // Pretrain on one seed, fine-tune on another; the model must still
  // classify (this is the pretrain->fine-tune recipe of Phi_Spa).
  const auto config = TinyConfig();
  std::vector<Image> pre_images, tune_images;
  std::vector<std::vector<double>> pre_targets, tune_targets;
  MakeData(30, 13, config, &pre_images, &pre_targets);
  MakeData(40, 14, config, &tune_images, &tune_targets);

  CnnImageModel model(config);
  model.Fit(pre_images, pre_targets, 10);
  model.Fit(tune_images, tune_targets);

  int correct = 0;
  for (std::size_t i = 0; i < tune_images.size(); ++i) {
    const auto probs = model.Predict(tune_images[i]);
    correct += (probs[0] > 0.5) == (tune_targets[i][0] > 0.5);
  }
  EXPECT_GT(correct, 32);
}

TEST(CnnTest, PredictionsAreProbabilities) {
  const auto config = TinyConfig();
  std::vector<Image> images;
  std::vector<std::vector<double>> targets;
  MakeData(16, 15, config, &images, &targets);
  CnnImageModel model(config);
  model.Fit(images, targets);
  for (const auto& image : images) {
    for (double p : model.Predict(image)) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(CnnTest, RejectsBadShapes) {
  const auto config = TinyConfig();
  CnnImageModel model(config);
  std::vector<Image> images{Image(3, 3, 0.0)};
  std::vector<std::vector<double>> targets{{1.0, 0.0}};
  EXPECT_THROW(model.Fit(images, targets), std::invalid_argument);
  EXPECT_THROW(model.Fit({}, {}), std::invalid_argument);
}

TEST(CnnTest, DeterministicGivenSeed) {
  const auto config = TinyConfig();
  std::vector<Image> images;
  std::vector<std::vector<double>> targets;
  MakeData(10, 16, config, &images, &targets);
  CnnImageModel a(config), b(config);
  a.Fit(images, targets);
  b.Fit(images, targets);
  const auto pa = a.Predict(images[0]);
  const auto pb = b.Predict(images[0]);
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_DOUBLE_EQ(pa[i], pb[i]);
}

}  // namespace
}  // namespace mexi::ml
