#include "robust/checkpoint.h"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.h"
#include "robust/fault_injection.h"
#include "robust/serialize.h"
#include "robust/status.h"
#include "stats/rng.h"

namespace mexi::robust {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test; removed on teardown.
class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("mexi_ckpt_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::Global().Clear();
    fs::remove_all(dir_);
  }

  std::string Dir() const { return dir_.string(); }

  static std::vector<std::uint8_t> Payload(const std::string& text) {
    return std::vector<std::uint8_t>(text.begin(), text.end());
  }

  static void FlipByte(const std::string& path, std::size_t offset) {
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file) << path;
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    file.get(byte);
    file.seekp(static_cast<std::streamoff>(offset));
    file.put(static_cast<char>(byte ^ 0x01));
  }

  static void Truncate(const std::string& path, std::uintmax_t size) {
    fs::resize_file(path, size);
  }

  fs::path dir_;
};

TEST_F(CheckpointTest, WriterReaderRoundTrip) {
  BinaryWriter writer;
  writer.WriteTag("TEST");
  writer.WriteU8(7);
  writer.WriteU32(123456789u);
  writer.WriteU64(0xDEADBEEFCAFEF00DULL);
  writer.WriteI64(-42);
  writer.WriteBool(true);
  writer.WriteBool(false);
  writer.WriteDouble(3.14159);
  writer.WriteDouble(-0.0);
  writer.WriteString("hello checkpoint");
  writer.WriteDoubleVector({1.0, -2.5, 1e-300});

  BinaryReader reader(writer.buffer());
  EXPECT_NO_THROW(reader.ExpectTag("TEST"));
  EXPECT_EQ(reader.ReadU8(), 7);
  EXPECT_EQ(reader.ReadU32(), 123456789u);
  EXPECT_EQ(reader.ReadU64(), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(reader.ReadI64(), -42);
  EXPECT_TRUE(reader.ReadBool());
  EXPECT_FALSE(reader.ReadBool());
  EXPECT_EQ(reader.ReadDouble(), 3.14159);
  const double neg_zero = reader.ReadDouble();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // bit-exact, not just value-equal
  EXPECT_EQ(reader.ReadString(), "hello checkpoint");
  EXPECT_EQ(reader.ReadDoubleVector(),
            (std::vector<double>{1.0, -2.5, 1e-300}));
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST_F(CheckpointTest, TagMismatchThrowsCorruption) {
  BinaryWriter writer;
  writer.WriteTag("AAAA");
  BinaryReader reader(writer.buffer());
  try {
    reader.ExpectTag("BBBB");
    FAIL() << "mismatched tag accepted";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kCorruption);
    EXPECT_NE(e.status().message().find("BBBB"), std::string::npos);
    EXPECT_NE(e.status().message().find("AAAA"), std::string::npos);
  }
}

TEST_F(CheckpointTest, TruncatedPayloadThrowsCorruption) {
  BinaryWriter writer;
  writer.WriteU64(1);
  BinaryReader reader(writer.buffer().data(), 4);  // cut mid-value
  EXPECT_THROW(reader.ReadU64(), StatusError);
}

TEST_F(CheckpointTest, HugeVectorLengthRejectedBeforeAllocation) {
  // A corrupted length header must fail loudly, not reserve terabytes.
  BinaryWriter writer;
  writer.WriteU64(0x7FFFFFFFFFFFFFFFULL);
  BinaryReader reader(writer.buffer());
  try {
    reader.ReadDoubleVector();
    FAIL() << "absurd vector length accepted";
  } catch (const StatusError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kCorruption);
  }
}

TEST_F(CheckpointTest, SealOpenRoundTrip) {
  const auto payload = Payload("the quick brown fox");
  const auto sealed = SealCheckpoint(payload);
  EXPECT_EQ(sealed.size(), payload.size() + 24);
  std::vector<std::uint8_t> recovered;
  EXPECT_TRUE(OpenCheckpoint(sealed, &recovered).ok());
  EXPECT_EQ(recovered, payload);
}

TEST_F(CheckpointTest, EveryFlippedByteIsDetected) {
  // One-byte corruption anywhere — header or payload — must be caught.
  const auto payload = Payload("integrity matters");
  const auto sealed = SealCheckpoint(payload);
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    auto corrupted = sealed;
    corrupted[i] ^= 0x10;
    std::vector<std::uint8_t> out;
    const Status status = OpenCheckpoint(corrupted, &out);
    EXPECT_FALSE(status.ok()) << "flip at byte " << i << " not detected";
    EXPECT_EQ(status.code(), StatusCode::kCorruption) << "byte " << i;
  }
}

TEST_F(CheckpointTest, TornWriteIsDetected) {
  const auto sealed = SealCheckpoint(Payload("partially persisted state"));
  for (const std::size_t keep : {0u, 10u, 23u, 24u, 30u}) {
    if (keep >= sealed.size()) continue;
    std::vector<std::uint8_t> torn(sealed.begin(), sealed.begin() + keep);
    std::vector<std::uint8_t> out;
    const Status status = OpenCheckpoint(torn, &out);
    EXPECT_EQ(status.code(), StatusCode::kCorruption)
        << "torn at " << keep << " bytes";
  }
}

TEST_F(CheckpointTest, WriteFileAtomicRoundTrip) {
  const std::string path = Dir() + "/file.bin";
  const auto bytes = Payload("atomic content");
  ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());
  EXPECT_FALSE(fs::exists(path + ".tmp"));  // no droppings
  std::vector<std::uint8_t> read_back;
  ASSERT_TRUE(ReadFileBytes(path, &read_back).ok());
  EXPECT_EQ(read_back, bytes);
}

TEST_F(CheckpointTest, FsyncOptInIsDurableAndCounted) {
  // MEXI_CKPT_FSYNC=1 must not change the bytes committed, and each
  // synced commit bumps the ckpt.fsyncs counter when metrics are on.
  auto& hub = obs::Observability::Global();
  hub.EnableMetrics(Dir() + "/metrics");
  const auto bytes = Payload("durable content");

  const std::string plain = Dir() + "/plain.bin";
  ASSERT_TRUE(WriteFileAtomic(plain, bytes).ok());
  EXPECT_EQ(hub.registry().GetCounter("ckpt.fsyncs").Value(), 0u);

  ::setenv("MEXI_CKPT_FSYNC", "1", 1);
  const std::string synced = Dir() + "/synced.bin";
  const Status status = WriteFileAtomic(synced, bytes);
  ::unsetenv("MEXI_CKPT_FSYNC");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(hub.registry().GetCounter("ckpt.fsyncs").Value(), 1u);

  std::vector<std::uint8_t> plain_back, synced_back;
  ASSERT_TRUE(ReadFileBytes(plain, &plain_back).ok());
  ASSERT_TRUE(ReadFileBytes(synced, &synced_back).ok());
  EXPECT_EQ(plain_back, synced_back);
  hub.Shutdown();
}

TEST_F(CheckpointTest, FsyncOptInCoversManagerCommits) {
  ::setenv("MEXI_CKPT_FSYNC", "1", 1);
  CheckpointManager manager(Dir(), "model");
  const Status first = manager.Commit(Payload("generation 1"));
  const Status second = manager.Commit(Payload("generation 2"));
  ::unsetenv("MEXI_CKPT_FSYNC");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(manager.LoadLatest(&payload, nullptr).ok());
  EXPECT_EQ(payload, Payload("generation 2"));
}

TEST_F(CheckpointTest, ReadMissingFileIsNotFound) {
  std::vector<std::uint8_t> bytes;
  const Status status = ReadFileBytes(Dir() + "/absent.bin", &bytes);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(CheckpointTest, ManagerCommitAndLoadLatest) {
  CheckpointManager manager(Dir(), "model");
  ASSERT_TRUE(manager.Commit(Payload("generation 1")).ok());
  ASSERT_TRUE(manager.Commit(Payload("generation 2")).ok());

  std::vector<std::uint8_t> payload;
  CheckpointManager::LoadInfo info;
  ASSERT_TRUE(manager.LoadLatest(&payload, &info).ok());
  EXPECT_EQ(payload, Payload("generation 2"));
  EXPECT_FALSE(info.fell_back);
  EXPECT_EQ(info.source_path, manager.CurrentPath());
}

TEST_F(CheckpointTest, ManagerFallsBackWhenCurrentCorrupted) {
  CheckpointManager manager(Dir(), "model");
  ASSERT_TRUE(manager.Commit(Payload("good old state")).ok());
  ASSERT_TRUE(manager.Commit(Payload("bad new state")).ok());
  // Flip one payload byte of the newest generation on disk.
  FlipByte(manager.CurrentPath(), 30);

  std::vector<std::uint8_t> payload;
  CheckpointManager::LoadInfo info;
  ASSERT_TRUE(manager.LoadLatest(&payload, &info).ok());
  EXPECT_EQ(payload, Payload("good old state"));
  EXPECT_TRUE(info.fell_back);
  EXPECT_EQ(info.source_path, manager.PreviousPath());
}

TEST_F(CheckpointTest, ManagerFallsBackWhenCurrentTorn) {
  CheckpointManager manager(Dir(), "model");
  ASSERT_TRUE(manager.Commit(Payload("good old state")).ok());
  ASSERT_TRUE(manager.Commit(Payload("half written next state")).ok());
  Truncate(manager.CurrentPath(), 10);  // lost mid-write

  std::vector<std::uint8_t> payload;
  CheckpointManager::LoadInfo info;
  ASSERT_TRUE(manager.LoadLatest(&payload, &info).ok());
  EXPECT_EQ(payload, Payload("good old state"));
  EXPECT_TRUE(info.fell_back);
}

TEST_F(CheckpointTest, ManagerReportsCorruptionWhenAllGenerationsBad) {
  CheckpointManager manager(Dir(), "model");
  ASSERT_TRUE(manager.Commit(Payload("first generation bytes")).ok());
  ASSERT_TRUE(manager.Commit(Payload("second generation bytes")).ok());
  FlipByte(manager.CurrentPath(), 28);
  FlipByte(manager.PreviousPath(), 28);

  std::vector<std::uint8_t> payload;
  const Status status = manager.LoadLatest(&payload);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST_F(CheckpointTest, ManagerNotFoundWhenEmpty) {
  CheckpointManager manager(Dir(), "model");
  std::vector<std::uint8_t> payload;
  EXPECT_EQ(manager.LoadLatest(&payload).code(), StatusCode::kNotFound);
}

TEST_F(CheckpointTest, SoleSurvivingPrevIsNotAFallback) {
  // Crash between "rotate current -> prev" and "install staged": only
  // .prev exists. That is the newest loadable state, not a degradation.
  CheckpointManager manager(Dir(), "model");
  ASSERT_TRUE(manager.Commit(Payload("only state")).ok());
  fs::rename(manager.CurrentPath(), manager.PreviousPath());

  std::vector<std::uint8_t> payload;
  CheckpointManager::LoadInfo info;
  ASSERT_TRUE(manager.LoadLatest(&payload, &info).ok());
  EXPECT_EQ(payload, Payload("only state"));
  EXPECT_FALSE(info.fell_back);
}

TEST_F(CheckpointTest, DiscardRemovesAllGenerations) {
  CheckpointManager manager(Dir(), "model");
  ASSERT_TRUE(manager.Commit(Payload("a")).ok());
  ASSERT_TRUE(manager.Commit(Payload("b")).ok());
  manager.Discard();
  std::vector<std::uint8_t> payload;
  EXPECT_EQ(manager.LoadLatest(&payload).code(), StatusCode::kNotFound);
}

TEST_F(CheckpointTest, InjectedEnospcFailsCommitButKeepsOldState) {
  CheckpointManager manager(Dir(), "model");
  ASSERT_TRUE(manager.Commit(Payload("safe state")).ok());

  FaultInjector::Global().Configure("enospc@ckpt_write:1");
  const Status status = manager.Commit(Payload("never lands"));
  FaultInjector::Global().Clear();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);

  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(manager.LoadLatest(&payload).ok());
  EXPECT_EQ(payload, Payload("safe state"));
}

TEST_F(CheckpointTest, InjectedShortWriteSurvivesViaFallback) {
  // The torn bytes *do* get installed (a lying disk) — but validation
  // rejects them and the previous generation takes over.
  CheckpointManager manager(Dir(), "model");
  ASSERT_TRUE(manager.Commit(Payload("durable state")).ok());

  FaultInjector::Global().Configure("short_write@ckpt_write:1");
  ASSERT_TRUE(manager.Commit(Payload("torn state")).ok());
  FaultInjector::Global().Clear();

  std::vector<std::uint8_t> payload;
  CheckpointManager::LoadInfo info;
  ASSERT_TRUE(manager.LoadLatest(&payload, &info).ok());
  EXPECT_EQ(payload, Payload("durable state"));
  EXPECT_TRUE(info.fell_back);
}

TEST_F(CheckpointTest, InjectedBitFlipSurvivesViaFallback) {
  CheckpointManager manager(Dir(), "model");
  ASSERT_TRUE(manager.Commit(Payload("durable state")).ok());

  FaultInjector::Global().Configure("bitflip@ckpt_write:1", 7);
  ASSERT_TRUE(manager.Commit(Payload("rotten state")).ok());
  FaultInjector::Global().Clear();

  std::vector<std::uint8_t> payload;
  CheckpointManager::LoadInfo info;
  ASSERT_TRUE(manager.LoadLatest(&payload, &info).ok());
  EXPECT_EQ(payload, Payload("durable state"));
  EXPECT_TRUE(info.fell_back);
}

TEST_F(CheckpointTest, RngStateRoundTripResumesDrawSequence) {
  stats::Rng original(12345);
  // Burn in and leave a Box-Muller half-pair cached mid-stream.
  for (int i = 0; i < 17; ++i) original.Uniform();
  original.Gaussian();

  BinaryWriter writer;
  WriteRngState(writer, original);
  stats::Rng restored(999);  // deliberately different seed
  BinaryReader reader(writer.buffer());
  ReadRngState(reader, restored);

  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(original.NextU64(), restored.NextU64()) << "draw " << i;
  }
  EXPECT_EQ(original.Gaussian(), restored.Gaussian());  // cache included
}

}  // namespace
}  // namespace mexi::robust
