#include "core/utilization.h"

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "test_fixtures.h"

namespace mexi {
namespace {

TEST(AggregateGroupTest, SelectsAndAverages) {
  std::vector<ExpertMeasures> measures(3);
  measures[0].precision = 0.9;
  measures[0].calibration = -0.1;
  measures[1].precision = 0.5;
  measures[1].calibration = 0.3;
  measures[2].precision = 0.1;
  measures[2].calibration = 0.5;

  const GroupPerformance all =
      AggregateGroup(measures, {true, true, true});
  EXPECT_NEAR(all.precision, 0.5, 1e-12);
  EXPECT_NEAR(all.calibration, 0.3, 1e-12);  // |.| mean
  EXPECT_EQ(all.count, 3u);

  const GroupPerformance top =
      AggregateGroup(measures, {true, false, false});
  EXPECT_DOUBLE_EQ(top.precision, 0.9);
  EXPECT_DOUBLE_EQ(top.calibration, 0.1);
  EXPECT_EQ(top.count, 1u);
  EXPECT_DOUBLE_EQ(top.var_precision, 0.0);

  const GroupPerformance none =
      AggregateGroup(measures, {false, false, false});
  EXPECT_EQ(none.count, 0u);
  EXPECT_THROW(AggregateGroup(measures, {true}), std::invalid_argument);
}

TEST(SelectPredictedExpertsTest, RequireAllVsAny) {
  std::vector<ExpertLabel> predictions{
      ExpertLabel::FromVector({1, 1, 1, 1}),
      ExpertLabel::FromVector({1, 0, 0, 0}),
      ExpertLabel::FromVector({0, 0, 0, 0})};
  EXPECT_EQ(SelectPredictedExperts(predictions, true),
            (std::vector<bool>{true, false, false}));
  EXPECT_EQ(SelectPredictedExperts(predictions, false),
            (std::vector<bool>{true, true, false}));
}

class UtilizationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fixture_ = testing::MakeSmallPoFixture(60, 516).release();
  }
  static void TearDownTestSuite() {
    delete fixture_;
    fixture_ = nullptr;
  }
  static testing::StudyFixture* fixture_;
};

testing::StudyFixture* UtilizationTest::fixture_ = nullptr;

/// An oracle selector: predicts the true characterization, so its
/// selected group must beat the unfiltered population.
class OracleSelector : public Characterizer {
 public:
  explicit OracleSelector(const EvaluationInput* input) : input_(input) {}
  std::string Name() const override { return "OracleSelect"; }
  void Fit(const std::vector<MatcherView>&, const std::vector<ExpertLabel>&,
           const TaskContext&) override {
    thresholds_ = FitThresholds(ComputeAllMeasures(*input_));
  }
  ExpertLabel Characterize(const MatcherView& matcher) const override {
    // Note: for early identification the view is a prefix, so even the
    // oracle works from partial information, as in Fig. 11.
    const ExpertMeasures m =
        ComputeMeasures(*matcher.history, matcher.source_size,
                        matcher.target_size, *input_->reference);
    return mexi::Characterize(m, thresholds_);
  }

 private:
  const EvaluationInput* input_;
  ExpertThresholds thresholds_;
};

TEST_F(UtilizationTest, OracleExpertsBeatNoFilter) {
  std::vector<CharacterizerFactory> methods;
  const EvaluationInput* input = &fixture_->input;
  methods.push_back(
      [input] { return std::make_unique<OracleSelector>(input); });

  ExperimentConfig config;
  config.folds = 3;
  const auto results =
      RunUtilizationExperiment(fixture_->input, methods, config);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].method, "no_filter");
  EXPECT_EQ(results[1].method, "OracleSelect");
  ASSERT_GT(results[1].performance.count, 0u);
  // Full experts are thorough (R > .5, far above the population mean),
  // calibrated (|Cal| below the 20th percentile) and correlated (Res
  // above the 80th percentile) — those orderings are near-structural.
  // Precision only guarantees > delta_P = .5, which can sit close to
  // the population mean, so it gets a sanity bound instead.
  EXPECT_GT(results[1].performance.recall, results[0].performance.recall);
  EXPECT_LT(results[1].performance.calibration,
            results[0].performance.calibration);
  EXPECT_GT(results[1].performance.resolution,
            results[0].performance.resolution);
  EXPECT_GT(results[1].performance.precision, 0.5);
}

TEST_F(UtilizationTest, EarlyIdentificationRuns) {
  std::vector<CharacterizerFactory> methods;
  const EvaluationInput* input = &fixture_->input;
  methods.push_back(
      [input] { return std::make_unique<OracleSelector>(input); });
  methods.push_back([] { return std::make_unique<ConfCharacterizer>(); });

  ExperimentConfig config;
  config.folds = 3;
  const auto results = RunEarlyIdentificationExperiment(
      fixture_->input, methods, config, /*early_decisions=*/10);
  ASSERT_EQ(results.size(), 3u);
  // no_filter performance is computed on full traces regardless.
  EXPECT_GT(results[0].performance.count, 0u);
}

TEST_F(UtilizationTest, EarlyDefaultUsesHalfMedian) {
  // Just verifies the default path executes (median/2 heuristics).
  std::vector<CharacterizerFactory> methods;
  methods.push_back([] { return std::make_unique<RandCharacterizer>(8); });
  ExperimentConfig config;
  config.folds = 3;
  const auto results =
      RunEarlyIdentificationExperiment(fixture_->input, methods, config, 0);
  EXPECT_EQ(results.size(), 2u);
}

}  // namespace
}  // namespace mexi
