// Archetypes: reproduces the qualitative figures 1/4/5/6 — one simulated
// matcher per archetype over the Purchase-Order task, printing the
// accumulated Precision / Recall / mean-confidence curves, the
// accumulated resolution & calibration (Fig. 6), and an ASCII rendering
// of the move-over heat map.

#include <cstdio>
#include <string>

#include "core/expert_model.h"
#include "matching/similarity.h"
#include "schema/generators.h"
#include "sim/matcher_sim.h"

namespace {

using namespace mexi;

void PrintCurve(const char* name, const std::vector<double>& values) {
  std::printf("  %-12s", name);
  // Sample ten evenly spaced points along the session.
  for (int k = 1; k <= 10; ++k) {
    const std::size_t idx =
        values.empty() ? 0 : (values.size() * k) / 10 - 1;
    std::printf(" %5.2f", values.empty() ? 0.0 : values[idx]);
  }
  std::printf("\n");
}

void PrintHeatMap(const matching::MovementMap& movement) {
  const ml::Matrix heat =
      movement.HeatMap(matching::MovementType::kMove, 10, 32);
  static const char* kShades = " .:-=+*#%@";
  for (std::size_t r = 0; r < heat.rows(); ++r) {
    std::printf("  |");
    for (std::size_t c = 0; c < heat.cols(); ++c) {
      const int level =
          static_cast<int>(heat(r, c) * 9.0 + 0.5);
      std::printf("%c", kShades[level < 0 ? 0 : (level > 9 ? 9 : level)]);
    }
    std::printf("|\n");
  }
}

}  // namespace

int main() {
  const auto pair = schema::GeneratePurchaseOrderTask(2021);
  const auto similarity =
      matching::BuildSimilarityMatrix(pair.source, pair.target);
  const auto reference = matching::MatchMatrix::FromReference(
      pair.reference, pair.source.size(), pair.target.size());

  sim::SimulationTask task;
  task.pair = &pair;
  task.similarity = &similarity;
  task.reference = &reference;

  const sim::Archetype archetypes[] = {
      sim::Archetype::kExpertA, sim::Archetype::kSloppyB,
      sim::Archetype::kNarrowC, sim::Archetype::kUnreliableD};

  stats::Rng rng(7);
  for (const auto archetype : archetypes) {
    const auto profile = sim::SampleProfile(archetype, rng);
    const auto trace = sim::SimulateMatcher(task, profile, rng);
    const auto curves = ComputeAccumulatedCurves(
        trace.history, pair.source.size(), pair.target.size(), reference);

    std::printf("=== Matcher %s (%zu decisions) ===\n",
                sim::ArchetypeName(archetype).c_str(),
                trace.history.size());
    std::printf("  curves at 10%%..100%% of the session:\n");
    PrintCurve("Precision", curves.precision);
    PrintCurve("Recall", curves.recall);
    PrintCurve("Confidence", curves.mean_confidence);
    PrintCurve("Resolution", curves.resolution);
    PrintCurve("Calibration", curves.calibration);
    std::printf("  move-over heat map (Fig. 1 right):\n");
    PrintHeatMap(trace.movement);
    std::printf("\n");
  }

  std::printf(
      "Expected shapes (paper Figs. 1/4/5/6): A keeps precision high\n"
      "while recall climbs and confidence tracks precision; B's\n"
      "precision sinks under over-confidence; C stays precise but its\n"
      "recall plateaus early; D matches A quantitatively but its\n"
      "resolution stays low and its confidence sits below precision.\n");
  return 0;
}
