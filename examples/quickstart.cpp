// Quickstart: the paper's running example (Example 1 / Table I) on the
// public API — build a decision history, project it onto a matching
// matrix (Eq. 1), compute the four expertise measures (Eqs. 2-5) and
// characterize the matcher.

#include <cstdio>

#include "core/expert_model.h"
#include "matching/decision_history.h"
#include "matching/match_matrix.h"

int main() {
  using namespace mexi;

  // The PO1/PO2 example: 4x4 element space; the reference match is
  // {M11, M12, M23, M34} (1-based, as printed in the paper).
  const matching::MatchMatrix reference =
      matching::MatchMatrix::FromReference(
          {{0, 0}, {0, 1}, {1, 2}, {2, 3}}, 4, 4);

  // Table I: the human matcher's five decisions. Note the mind change on
  // M11 — first 0.9 at t=8, lowered to 0.5 at t=16 after encountering
  // poTime.
  matching::DecisionHistory history;
  history.Add({2, 3, 1.0, 3.0});    // M34: city <-> city
  history.Add({0, 0, 0.9, 8.0});    // M11: poDay <-> orderDate
  history.Add({0, 1, 0.5, 15.0});   // M12
  history.Add({0, 0, 0.5, 16.0});   // M11 revisited
  history.Add({1, 0, 0.45, 34.0});  // M21

  std::printf("Decision history (Table I):\n");
  std::printf("%4s %6s %11s %6s\n", "#", "entry", "confidence", "time");
  for (std::size_t i = 0; i < history.size(); ++i) {
    const auto& d = history.at(i);
    std::printf("%4zu  M%zu%zu %11.2f %6.1f\n", i + 1, d.source + 1,
                d.target + 1, d.confidence, d.timestamp);
  }

  // Eq. 1: the latest confidence per pair becomes the matrix entry.
  const matching::MatchMatrix matrix = history.ToMatrix(4, 4);
  std::printf("\nProjected match sigma (Eq. 1):\n");
  for (const auto& [i, j] : matrix.Match()) {
    std::printf("  M%zu%zu = %.2f\n", i + 1, j + 1, matrix.At(i, j));
  }

  // Eqs. 2-5.
  const ExpertMeasures m = ComputeMeasures(history, 4, 4, reference);
  std::printf("\nExpertise measures:\n");
  std::printf("  Precision   P(H)   = %.2f\n", m.precision);
  std::printf("  Recall      R(H)   = %.2f\n", m.recall);
  std::printf("  Resolution  Res(H) = %.2f (p = %.2f)\n", m.resolution,
              m.resolution_pvalue);
  std::printf("  Calibration Cal(H) = %+.2f (mean confidence %.2f)\n",
              m.calibration, history.MeanConfidence());

  // Characterization with the paper's experimental thresholds.
  ExpertThresholds thresholds;
  thresholds.delta_res = 0.5;
  thresholds.delta_cal = 0.205;  // the paper's 20th percentile
  const ExpertLabel label = Characterize(m, thresholds);
  std::printf("\nCharacterization:\n");
  const auto& names = CharacteristicNames();
  const auto bits = label.ToVector();
  for (std::size_t c = 0; c < names.size(); ++c) {
    std::printf("  %-11s %s\n", names[c].c_str(),
                bits[c] ? "yes" : "no");
  }
  std::printf(
      "\nAs in the paper: precise and thorough; resolution 1.0 is not\n"
      "statistically significant on 4 decisions, so not correlated; the\n"
      "slight under-confidence is within the calibration threshold.\n");
  return 0;
}
