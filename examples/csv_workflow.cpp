// CSV workflow: how a deployment would run MExI on *real logged data* —
// decision logs and mouse traces exported to CSV (Ontobuilder /
// Ghost-Mouse style), loaded back, labeled against a validated
// reference, and used to train and apply a characterizer. Here the
// "logged" data comes from the simulator, written to disk and read back
// through the same loaders a real study would use.

#include <cstdio>
#include <cstdlib>

#include "core/evaluation.h"
#include "core/mexi.h"
#include "matching/io.h"
#include "sim/study.h"

int main() {
  using namespace mexi;

  // --- A study happens; its traces get logged to CSV. ---
  sim::StudyConfig config;
  config.num_matchers = 40;
  config.seed = 88;
  const sim::Study study = sim::BuildPurchaseOrderStudy(config);

  std::vector<matching::LoadedMatcher> logged;
  for (const auto& m : study.matchers) {
    matching::LoadedMatcher entry;
    entry.id = m.id;
    entry.history = m.history;
    entry.movement = m.movement;
    logged.push_back(std::move(entry));
  }
  const std::string dir = "/tmp/mexi_csv_workflow";
  std::system(("mkdir -p " + dir).c_str());
  matching::SaveMatchersToFiles(logged, dir + "/decisions.csv",
                                dir + "/movements.csv");
  matching::SaveReferenceToFile(study.task.reference,
                                dir + "/reference.csv");
  std::printf("exported %zu matchers to %s\n", logged.size(), dir.c_str());

  // --- A fresh process loads the logs. ---
  const auto matchers = matching::LoadMatchersFromFiles(
      dir + "/decisions.csv", dir + "/movements.csv");
  const auto reference_pairs =
      matching::LoadReferenceFromFile(dir + "/reference.csv");
  const auto reference = matching::MatchMatrix::FromReference(
      reference_pairs, study.task.source.size(), study.task.target.size());
  std::printf("loaded %zu matchers, %zu reference correspondences\n",
              matchers.size(), reference_pairs.size());

  // --- Build evaluation views over the loaded data. ---
  EvaluationInput input;
  input.reference = &reference;
  input.context.source_size = study.task.source.size();
  input.context.target_size = study.task.target.size();
  for (const auto& m : matchers) {
    MatcherView view;
    view.history = &m.history;
    view.movement = &m.movement;
    view.source_size = study.task.source.size();
    view.target_size = study.task.target.size();
    input.matchers.push_back(view);
  }

  const auto measures = ComputeAllMeasures(input);
  const ExpertThresholds thresholds = FitThresholds(measures);
  const auto labels = LabelsFromMeasures(measures, thresholds);

  Mexi mexi(Mexi50Config());
  mexi.Fit(input.matchers, labels, input.context);
  const auto predictions = mexi.CharacterizeAll(input.matchers);

  const auto accuracy = PerLabelAccuracy(labels, predictions);
  std::printf("\nin-sample identification accuracy on the loaded logs:\n");
  const auto& names = CharacteristicNames();
  for (std::size_t c = 0; c < names.size(); ++c) {
    std::printf("  A_%-10s = %.2f\n", names[c].c_str(), accuracy[c]);
  }
  std::printf("  A_ML         = %.2f\n",
              MultiLabelAccuracy(labels, predictions));
  std::printf(
      "\nSwap the CSVs for your own study's exports and the same code\n"
      "characterizes your matchers.\n");
  return 0;
}
