// mexi_serve — the MExI characterization server.
//
// Loads a versioned model bundle (written by `mexi_cli bundle`) and
// serves batch and streaming characterization over a dependency-free
// HTTP/1.1 endpoint. See src/serve/server.h for the endpoint and
// robustness contracts, and DESIGN.md §13 for the drain state machine.
//
//   mexi_serve --bundle model.mxb --port 8080
//   curl -s localhost:8080/status
//   curl -s -X POST --data-binary @traces.csv \
//       'localhost:8080/characterize?rows=6&cols=6'

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "ml/vmath/vmath.h"
#include "obs/obs.h"
#include "robust/checkpoint.h"
#include "serve/bundle.h"
#include "serve/server.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: mexi_serve --bundle PATH [options]\n"
      "  --bundle PATH        model bundle from `mexi_cli bundle` "
      "(required)\n"
      "  --host HOST          bind address (default 127.0.0.1)\n"
      "  --port N             port; 0 picks an ephemeral one (default 0)\n"
      "  --queue-max N        in-flight admission bound; beyond it "
      "requests\n"
      "                       are shed with 503 + Retry-After (default "
      "32)\n"
      "  --deadline-ms N      default per-request compute budget; expiry\n"
      "                       answers 504 (default 2000)\n"
      "  --read-timeout-ms N  drop clients idle this long (default 5000)\n"
      "  --write-timeout-ms N drop clients stalling writes this long\n"
      "                       (default 5000)\n"
      "  --workers N          compute worker threads (default 1)\n"
      "  --checkpoint-dir DIR commit the drain audit checkpoint here on\n"
      "                       graceful shutdown (default: none)\n"
      "  --metrics-out DIR    arm the observability JSONL sinks\n"
      "  --exact-math         serve with exact scalar transcendentals\n"
      "                       (default: gated fast math, like `mexi_cli\n"
      "                       characterize`; env MEXI_FAST_MATH=0 also\n"
      "                       opts out)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string bundle_path;
  std::string metrics_out;
  bool exact_math = false;
  mexi::serve::ServerConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--bundle" && has_value) {
      bundle_path = argv[++i];
    } else if (arg == "--host" && has_value) {
      config.host = argv[++i];
    } else if (arg == "--port" && has_value) {
      config.port = std::atoi(argv[++i]);
    } else if (arg == "--queue-max" && has_value) {
      config.queue_max = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--deadline-ms" && has_value) {
      config.deadline_ms = std::atoi(argv[++i]);
    } else if (arg == "--read-timeout-ms" && has_value) {
      config.read_timeout_ms = std::atoi(argv[++i]);
    } else if (arg == "--write-timeout-ms" && has_value) {
      config.write_timeout_ms = std::atoi(argv[++i]);
    } else if (arg == "--workers" && has_value) {
      config.num_workers = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--checkpoint-dir" && has_value) {
      config.checkpoint_dir = argv[++i];
    } else if (arg == "--metrics-out" && has_value) {
      metrics_out = argv[++i];
    } else if (arg == "--exact-math") {
      exact_math = true;
    } else {
      return Usage();
    }
  }
  if (bundle_path.empty()) return Usage();

  // Serving is a durability context: the drain checkpoint is the audit
  // record of what this process answered, so fsync-on-commit defaults ON
  // here (MEXI_CKPT_FSYNC=0 still opts out — see DESIGN.md §13).
  mexi::robust::SetFsyncDefault(true);

  // Serve-path math default: gated fast mode unless the user or the
  // environment pins exact (same contract as `mexi_cli characterize`).
  if (exact_math) {
    mexi::ml::vmath::SetFastMath(false);
  } else {
    const char* env = std::getenv("MEXI_FAST_MATH");
    const bool env_off = env != nullptr && env[0] == '0' && env[1] == '\0';
    if (!env_off) mexi::ml::vmath::SetFastMath(true);
  }

  mexi::obs::Observability& hub = mexi::obs::Observability::Global();
  if (!metrics_out.empty()) hub.EnableMetrics(metrics_out);

  try {
    std::uint64_t fingerprint = 0;
    mexi::Mexi model = mexi::serve::LoadBundle(bundle_path, &fingerprint);
    mexi::serve::Server server(config, std::move(model), fingerprint);
    server.Start();
    mexi::serve::Server::InstallSignalHandlers(&server);
    // The "listening" line is the readiness signal scripts wait for; it
    // also carries the ephemeral port when --port 0 was used.
    std::printf("mexi_serve: listening on %s:%d bundle_fingerprint=%llu\n",
                config.host.c_str(), server.port(),
                static_cast<unsigned long long>(fingerprint));
    std::fflush(stdout);
    server.Run();
    const mexi::serve::ServerStats stats = server.Stats();
    std::printf("mexi_serve: drained (requests_total=%llu responses_ok=%llu "
                "shed=%llu deadline_expired=%llu)\n",
                static_cast<unsigned long long>(stats.requests_total),
                static_cast<unsigned long long>(stats.responses_ok),
                static_cast<unsigned long long>(stats.shed_total),
                static_cast<unsigned long long>(stats.deadline_expired_total));
    std::fflush(stdout);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mexi_serve: %s\n", error.what());
    hub.Shutdown();
    return 1;
  }
  hub.Shutdown();
  return 0;
}
