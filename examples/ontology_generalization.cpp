// Ontology generalization: train MExI on the schema-matching (PO) crowd
// and characterize matchers of a *different* task — OAEI-style ontology
// alignment — exactly the paper's generalizability experiment
// (Table IIb) on the public API.

#include <cstdio>

#include "core/evaluation.h"
#include "core/mexi.h"
#include "sim/study.h"

namespace {

mexi::EvaluationInput ViewsOf(const mexi::sim::Study& study) {
  mexi::EvaluationInput input;
  input.reference = &study.reference;
  input.context.source_size = study.task.source.size();
  input.context.target_size = study.task.target.size();
  for (const auto& m : study.matchers) {
    mexi::MatcherView view;
    view.history = &m.history;
    view.movement = &m.movement;
    view.warmup_history = &m.warmup_history;
    view.source_size = study.task.source.size();
    view.target_size = study.task.target.size();
    input.matchers.push_back(view);
  }
  return input;
}

}  // namespace

int main() {
  using namespace mexi;

  sim::StudyConfig po_config;
  po_config.num_matchers = 60;
  po_config.seed = 42;
  const sim::Study po = sim::BuildPurchaseOrderStudy(po_config);

  sim::StudyConfig oaei_config;
  oaei_config.num_matchers = 20;
  oaei_config.seed = 43;
  const sim::Study oaei = sim::BuildOaeiStudy(oaei_config);

  std::printf("train task: %s/%s (%zu x %zu elements), %zu matchers\n",
              po.task.source.name().c_str(), po.task.target.name().c_str(),
              po.task.source.size(), po.task.target.size(),
              po.matchers.size());
  std::printf("test task:  %s/%s (%zu x %zu elements), %zu matchers\n\n",
              oaei.task.source.name().c_str(),
              oaei.task.target.name().c_str(), oaei.task.source.size(),
              oaei.task.target.size(), oaei.matchers.size());

  const EvaluationInput po_input = ViewsOf(po);
  const EvaluationInput oaei_input = ViewsOf(oaei);

  // Labels and thresholds come from the PO population only.
  const auto po_measures = ComputeAllMeasures(po_input);
  const ExpertThresholds thresholds = FitThresholds(po_measures);
  const auto po_labels = LabelsFromMeasures(po_measures, thresholds);

  Mexi mexi(Mexi50Config());
  mexi.Fit(po_input.matchers, po_labels, po_input.context);

  // Characterize the ontology-alignment matchers with the PO-trained
  // model; grade against labels computed with the PO thresholds.
  const auto oaei_measures = ComputeAllMeasures(oaei_input);
  const auto oaei_labels = LabelsFromMeasures(oaei_measures, thresholds);
  const auto predictions = mexi.CharacterizeAll(oaei_input.matchers);

  const auto a_c = PerLabelAccuracy(oaei_labels, predictions);
  std::printf("cross-task identification accuracy:\n");
  const auto& names = CharacteristicNames();
  for (std::size_t c = 0; c < names.size(); ++c) {
    std::printf("  A_%-10s = %.2f\n", names[c].c_str(), a_c[c]);
  }
  std::printf("  A_ML         = %.2f\n",
              MultiLabelAccuracy(oaei_labels, predictions));
  std::printf(
      "\nA model trained on schema matchers transfers to ontology\n"
      "alignment because the behavioral encoding (predictors, traces,\n"
      "consensus, networks) is task-shape independent (Table IIb).\n");
  return 0;
}
