// Expert filtering: the MExI end-to-end workflow a matching system would
// run — simulate a crowd of matchers, train MExI_50 on a labeled half,
// characterize the other half, and show how much keeping only predicted
// experts improves the crowd's matching quality (a miniature Fig. 10).

#include <cstdio>

#include "core/evaluation.h"
#include "core/mexi.h"
#include "core/utilization.h"
#include "sim/study.h"

int main() {
  using namespace mexi;

  // 1. A crowd of 60 simulated matchers over the PO task.
  sim::StudyConfig study_config;
  study_config.num_matchers = 60;
  study_config.seed = 516;
  const sim::Study study = sim::BuildPurchaseOrderStudy(study_config);
  std::printf("simulated %zu matchers, %zu decisions total\n",
              study.matchers.size(), study.TotalDecisions());

  // 2. Views + ground-truth labels (labels would come from a validated
  //    subset in a real deployment).
  EvaluationInput all;
  all.reference = &study.reference;
  all.context.source_size = study.task.source.size();
  all.context.target_size = study.task.target.size();
  for (const auto& m : study.matchers) {
    MatcherView view;
    view.history = &m.history;
    view.movement = &m.movement;
    view.warmup_history = &m.warmup_history;
    view.source_size = study.task.source.size();
    view.target_size = study.task.target.size();
    all.matchers.push_back(view);
  }
  const auto measures = ComputeAllMeasures(all);

  std::vector<MatcherView> train_views, test_views;
  std::vector<ExpertMeasures> train_measures, test_measures;
  for (std::size_t i = 0; i < all.matchers.size(); ++i) {
    if (i % 2 == 0) {
      train_views.push_back(all.matchers[i]);
      train_measures.push_back(measures[i]);
    } else {
      test_views.push_back(all.matchers[i]);
      test_measures.push_back(measures[i]);
    }
  }
  const ExpertThresholds thresholds = FitThresholds(train_measures);
  const auto train_labels = LabelsFromMeasures(train_measures, thresholds);

  // 3. Train MExI_50 and characterize the unseen half.
  Mexi mexi(Mexi50Config());
  mexi.Fit(train_views, train_labels, all.context);
  std::printf("selected classifiers per characteristic:");
  for (const auto& name : mexi.selected_models()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n");

  const auto predictions = mexi.CharacterizeAll(test_views);

  // 4. Compare the predicted-expert group to the unfiltered test crowd.
  //    "Expert" = any matcher holding >= 3 predicted characteristics (a
  //    deployment would tune this to its budget).
  std::vector<bool> selected(test_views.size(), false);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    selected[i] = predictions[i].Count() >= 3;
    kept += selected[i];
  }
  const GroupPerformance everyone = AggregateGroup(
      test_measures, std::vector<bool>(test_measures.size(), true));
  const GroupPerformance experts = AggregateGroup(test_measures, selected);

  std::printf("%-18s %4s %6s %6s %6s %8s\n", "group", "n", "P", "R",
              "Res", "|Cal|");
  std::printf("%-18s %4zu %6.2f %6.2f %6.2f %8.2f\n", "no_filter",
              everyone.count, everyone.precision, everyone.recall,
              everyone.resolution, everyone.calibration);
  std::printf("%-18s %4zu %6.2f %6.2f %6.2f %8.2f\n", "MExI experts",
              experts.count, experts.precision, experts.recall,
              experts.resolution, experts.calibration);
  if (kept == 0) {
    std::printf("(no matcher passed the expertise bar on this draw)\n");
  } else {
    std::printf(
        "\nFiltering the crowd through MExI lifts precision/recall and\n"
        "reduces |calibration| — the Fig. 10 effect.\n");
  }
  return 0;
}
