// mexi_cli — command-line driver for the MExI pipeline on CSV data.
//
// Subcommands:
//   simulate    --out DIR [--matchers N] [--seed S] [--task po|oaei|er]
//               Simulate a study and export decisions/movements/reference
//               CSVs plus the task dimensions.
//   measure     --dir DIR --rows N --cols M
//               Print each matcher's P / R / Res / Cal and its expertise
//               characterization under population thresholds.
//   characterize --dir DIR --rows N --cols M [--folds K]
//               [--checkpoint-dir DIR] [--resume]
//               Cross-validated MExI_50 identification over the loaded
//               matchers; prints per-characteristic accuracy. With
//               --checkpoint-dir, each finished fold is committed to an
//               atomic checkpoint; --resume loads finished folds from a
//               previous (possibly killed) run instead of recomputing
//               them, with bitwise-identical output.
//   fuse        --dir DIR --rows N --cols M
//               Fuse the crowd's matrices (expertise-weighted) and print
//               the final match quality.
//   stream      --dir DIR --rows N --cols M [--engine stream|batch]
//               [--matcher I]
//               Train one MExI_50 on the loaded population, then replay
//               each matcher's trace through the incremental streaming
//               engine and print one JSONL line per decision (running
//               labels + probabilities) plus a final exact line that is
//               byte-identical to what --engine batch prints from the
//               batch Characterize path.
//   sweep       --out FILE [--population N] [--shard-size N] [--seed S]
//               [--task po|oaei|er] [--mix wide|paper]
//               [--checkpoint-dir DIR] [--resume] [--batch-size B]
//               Population-scale sweep: train MExI_50 on a paper-mix
//               study, then generate + characterize a large synthetic
//               population (including the adversarial archetypes) in
//               bounded-memory shards, streaming per-archetype label
//               confusions, score quantile sketches and calibration
//               buckets into a byte-stable aggregate JSON report.
//
// The CSV formats are documented in matching/io.h; `simulate` produces
// them, and any real study exported in the same shape works unchanged.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "core/boosting.h"
#include "core/evaluation.h"
#include "core/mexi.h"
#include "core/streaming.h"
#include "core/sweep.h"
#include "matching/io.h"
#include "ml/vmath/vmath.h"
#include "obs/obs.h"
#include "parallel/parallel_for.h"
#include "robust/checkpoint.h"
#include "robust/fault_injection.h"
#include "robust/serialize.h"
#include "robust/status.h"
#include "serve/bundle.h"
#include "sim/study.h"
#include "stats/rng.h"

namespace {

using namespace mexi;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  long GetLong(const std::string& key, long fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stol(it->second);
  }
  bool Has(const std::string& key) const {
    return options.find(key) != options.end();
  }
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    // Value-less flags (e.g. --resume) are stored as "1".
    std::string value("1");
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[i + 1];
      ++i;
    }
    args.options.insert_or_assign(std::move(key), std::move(value));
  }
  return args;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  mexi_cli simulate     --out DIR [--matchers N] [--seed S]"
      " [--task po|oaei|er]\n"
      "  mexi_cli measure      --dir DIR --rows N --cols M\n"
      "  mexi_cli characterize --dir DIR --rows N --cols M [--folds K]\n"
      "                        [--checkpoint-dir DIR] [--resume]\n"
      "                        [--batch-size B]  route characterization\n"
      "                        through the batched inference engine in\n"
      "                        chunks of B matchers (default 1 = per\n"
      "                        trace; results are identical).\n"
      "  mexi_cli fuse         --dir DIR --rows N --cols M\n"
      "  mexi_cli stream       --dir DIR --rows N --cols M\n"
      "                        [--engine stream|batch] [--matcher I]\n"
      "                        per-decision JSONL running estimates from\n"
      "                        the incremental streaming engine; the\n"
      "                        final line per matcher is byte-identical\n"
      "                        to the batch engine's answer.\n"
      "  mexi_cli bundle       --dir DIR --rows N --cols M --out PATH\n"
      "                        train MExI_50 on the study and write the\n"
      "                        versioned serve bundle mexi_serve loads.\n"
      "  mexi_cli sweep        --out FILE [--population N]\n"
      "                        [--shard-size N] [--seed S]\n"
      "                        [--task po|oaei|er] [--mix wide|paper]\n"
      "                        [--train-matchers N] [--batch-size B]\n"
      "                        [--checkpoint-dir DIR] [--resume]\n"
      "                        population-scale generate + characterize\n"
      "                        sweep in bounded-memory shards; writes a\n"
      "                        byte-stable aggregate JSON report that is\n"
      "                        identical at every thread count, shard\n"
      "                        size, and across kill/--resume.\n"
      "global options:\n"
      "  --threads N   worker threads for parallel stages (0 = auto,\n"
      "                1 = sequential; default: MEXI_THREADS or auto).\n"
      "                Results are identical for every thread count.\n"
      "  --metrics-out DIR\n"
      "                write metrics.jsonl + run_manifest.json under DIR\n"
      "                and print a summary on stderr (env: MEXI_METRICS).\n"
      "                Outputs are bitwise identical with metrics on/off.\n"
      "  --status-file PATH\n"
      "                atomically rewrite a small JSON progress snapshot\n"
      "                at PATH as the run advances (env:\n"
      "                MEXI_STATUS_FILE).\n"
      "  --fast-math   allow ULP-bounded SIMD transcendentals and fused\n"
      "                products on Predict/inference paths (env:\n"
      "                MEXI_FAST_MATH). Default ON for characterize,\n"
      "                stream and sweep (the serve paths); other\n"
      "                commands default exact.\n"
      "                Training always stays exact; simulate output and\n"
      "                fitted models are unchanged, predictions may\n"
      "                differ in the last bits.\n"
      "  --exact-math  force the exact scalar transcendentals and split\n"
      "                multiply-adds everywhere (opts characterize out\n"
      "                of its fast-math default).\n");
  return 2;
}

/// Loads CSVs from `dir` and builds the evaluation views.
struct LoadedStudy {
  std::vector<matching::LoadedMatcher> matchers;
  matching::MatchMatrix reference;
  EvaluationInput input;
};

LoadedStudy Load(const std::string& dir, std::size_t rows,
                 std::size_t cols) {
  LoadedStudy study;
  study.matchers = matching::LoadMatchersFromFiles(dir + "/decisions.csv",
                                                   dir + "/movements.csv");
  matching::ValidateMatchers(study.matchers, rows, cols);
  study.reference = matching::MatchMatrix::FromReference(
      matching::LoadReferenceFromFile(dir + "/reference.csv"), rows, cols);
  study.input.reference = &study.reference;
  study.input.context.source_size = rows;
  study.input.context.target_size = cols;
  for (const auto& m : study.matchers) {
    MatcherView view;
    view.history = &m.history;
    view.movement = &m.movement;
    view.source_size = rows;
    view.target_size = cols;
    study.input.matchers.push_back(view);
  }
  return study;
}

int CmdSimulate(const Args& args) {
  const std::string out = args.Get("out");
  if (out.empty()) return Usage();
  sim::StudyConfig config;
  config.num_matchers =
      static_cast<std::size_t>(args.GetLong("matchers", 40));
  config.seed = static_cast<std::uint64_t>(args.GetLong("seed", 42));
  const std::string task = args.Get("task", "po");

  sim::Study study;
  if (task == "po") {
    study = sim::BuildPurchaseOrderStudy(config);
  } else if (task == "oaei") {
    study = sim::BuildOaeiStudy(config);
  } else if (task == "er") {
    // Task stream 3; streams 1/2 are the PO/OAEI tasks (sim/study.cc).
    study = sim::BuildStudy(schema::GenerateEntityResolutionTask(
                                stats::Rng(config.seed).SubSeed(3)),
                            config);
  } else {
    return Usage();
  }

  std::vector<matching::LoadedMatcher> logged;
  for (const auto& m : study.matchers) {
    matching::LoadedMatcher entry;
    entry.id = m.id;
    entry.history = m.history;
    entry.movement = m.movement;
    logged.push_back(std::move(entry));
  }
  std::filesystem::create_directories(out);
  matching::SaveMatchersToFiles(logged, out + "/decisions.csv",
                                out + "/movements.csv");
  matching::SaveReferenceToFile(study.task.reference,
                                out + "/reference.csv");
  std::printf("wrote %zu matchers to %s (task %s: %zu x %zu elements)\n",
              logged.size(), out.c_str(), task.c_str(),
              study.task.source.size(), study.task.target.size());
  std::printf("rerun with: --rows %zu --cols %zu\n",
              study.task.source.size(), study.task.target.size());
  return 0;
}

int CmdMeasure(const Args& args) {
  const std::string dir = args.Get("dir");
  const long rows = args.GetLong("rows", 0);
  const long cols = args.GetLong("cols", 0);
  if (dir.empty() || rows <= 0 || cols <= 0) return Usage();
  const LoadedStudy study =
      Load(dir, static_cast<std::size_t>(rows),
           static_cast<std::size_t>(cols));

  const auto measures = ComputeAllMeasures(study.input);
  const ExpertThresholds thresholds = FitThresholds(measures);
  std::printf("thresholds: dP=%.2f dR=%.2f dRes=%.3f dCal=%.3f\n\n",
              thresholds.delta_p, thresholds.delta_r, thresholds.delta_res,
              thresholds.delta_cal);
  std::printf("%6s %6s %6s %7s %7s  %s\n", "id", "P", "R", "Res", "Cal",
              "characterization");
  for (std::size_t i = 0; i < measures.size(); ++i) {
    const auto& m = measures[i];
    const ExpertLabel label = Characterize(m, thresholds);
    const auto bits = label.ToVector();
    std::printf("%6d %6.2f %6.2f %7.2f %+7.2f  %c%c%c%c%s\n",
                study.matchers[i].id, m.precision, m.recall, m.resolution,
                m.calibration, bits[0] ? 'P' : '-', bits[1] ? 'R' : '-',
                bits[2] ? 'C' : '-', bits[3] ? 'B' : '-',
                label.IsFullExpert() ? "  <= full expert" : "");
  }
  return 0;
}

int CmdCharacterize(const Args& args) {
  const std::string dir = args.Get("dir");
  const long rows = args.GetLong("rows", 0);
  const long cols = args.GetLong("cols", 0);
  if (dir.empty() || rows <= 0 || cols <= 0) return Usage();
  const LoadedStudy study =
      Load(dir, static_cast<std::size_t>(rows),
           static_cast<std::size_t>(cols));

  const long batch_size = args.GetLong("batch-size", 1);
  if (batch_size < 1) return Usage();
  std::vector<CharacterizerFactory> methods;
  methods.push_back([batch_size] {
    MexiConfig mexi_config = Mexi50Config();
    mexi_config.batch_size = static_cast<std::size_t>(batch_size);
    return std::make_unique<Mexi>(mexi_config);
  });
  ExperimentConfig config;
  config.folds = static_cast<std::size_t>(args.GetLong("folds", 5));
  config.checkpoint_dir = args.Get("checkpoint-dir");
  if (!config.checkpoint_dir.empty() && !args.Has("resume")) {
    // Fresh run: drop fold checkpoints left by earlier invocations so
    // only --resume continues from them.
    for (std::size_t f = 0; f < config.folds; ++f) {
      mexi::robust::CheckpointManager(config.checkpoint_dir,
                                      "fold_" + std::to_string(f))
          .Discard();
    }
  }
  const auto results =
      RunKFoldExperiment(study.input, methods, config);
  const auto& r = results[0];
  std::printf("MExI_50 %zu-fold identification accuracy over %zu "
              "matchers:\n",
              config.folds, study.input.matchers.size());
  std::printf("  A_P=%.2f A_R=%.2f A_Res=%.2f A_Cal=%.2f A_ML=%.2f\n",
              r.a_c[0], r.a_c[1], r.a_c[2], r.a_c[3], r.a_ml);
  return 0;
}

/// One JSONL estimate line. `%.17g` keeps doubles round-trippable and
/// byte-stable, so stream-vs-batch parity can be checked with cmp.
void PrintStreamLine(int matcher_id, std::size_t decision_index,
                     bool is_final, const ExpertLabel& label,
                     const std::vector<double>& probabilities) {
  const auto bits = label.ToVector();
  std::printf("{\"matcher\":%d,\"decision\":%zu,\"final\":%s,\"labels\":[",
              matcher_id, decision_index, is_final ? "true" : "false");
  for (std::size_t c = 0; c < bits.size(); ++c) {
    std::printf("%s%d", c == 0 ? "" : ",", bits[c]);
  }
  double total = 0.0;
  for (const double p : probabilities) total += p;
  const double confidence =
      probabilities.empty()
          ? 0.0
          : total / static_cast<double>(probabilities.size());
  std::printf("],\"confidence\":%.17g,\"probabilities\":[", confidence);
  for (std::size_t c = 0; c < probabilities.size(); ++c) {
    std::printf("%s%.17g", c == 0 ? "" : ",", probabilities[c]);
  }
  std::printf("]}\n");
  // Each line is durable before the next decision is consumed: a killed
  // stream leaves a prefix of complete lines (the chaos test's
  // contract).
  std::fflush(stdout);
  switch (mexi::robust::FaultInjector::Global().Hit(
      robust::FaultSite::kStreamEmit)) {
    case robust::FaultKind::kAbort:
      robust::ThrowStatus(robust::StatusCode::kAborted,
                          "injected abort at stream_emit");
    case robust::FaultKind::kKill:
      std::_Exit(137);
    default:
      break;
  }
}

int CmdStream(const Args& args) {
  const std::string dir = args.Get("dir");
  const long rows = args.GetLong("rows", 0);
  const long cols = args.GetLong("cols", 0);
  if (dir.empty() || rows <= 0 || cols <= 0) return Usage();
  const std::string engine = args.Get("engine", "stream");
  if (engine != "stream" && engine != "batch") return Usage();
  const LoadedStudy study =
      Load(dir, static_cast<std::size_t>(rows),
           static_cast<std::size_t>(cols));

  // Ground-truth labels under population thresholds (as in `measure`),
  // then one full MExI_50 fit on the whole population. Training is
  // pinned exact by the TrainingScope contract, so repeated runs are
  // deterministic — the chaos prefix-stability test relies on it.
  const auto measures = ComputeAllMeasures(study.input);
  const ExpertThresholds thresholds = FitThresholds(measures);
  const auto labels = LabelsFromMeasures(measures, thresholds);
  Mexi model(Mexi50Config());
  model.Fit(study.input.matchers, labels, study.input.context);

  const long only = args.GetLong("matcher", -1);
  for (std::size_t i = 0; i < study.input.matchers.size(); ++i) {
    if (only >= 0 && static_cast<std::size_t>(only) != i) continue;
    const MatcherView& m = study.input.matchers[i];
    const int id = study.matchers[i].id;
    if (engine == "batch") {
      // Final answer only, via the batch serve path — formatted by the
      // same printer so stream-vs-batch parity is a byte compare.
      PrintStreamLine(id, m.history->size(), /*is_final=*/true,
                      model.Characterize(m), model.CharacterizeProba(m));
      continue;
    }
    StreamingCharacterizer stream = model.OpenStream(
        m.source_size, m.target_size, m.movement->screen_width(),
        m.movement->screen_height());
    const auto& events = m.movement->events();
    std::size_t next_event = 0;
    for (std::size_t k = 0; k < m.history->size(); ++k) {
      const matching::Decision& d = m.history->at(k);
      while (next_event < events.size() &&
             events[next_event].timestamp <= d.timestamp) {
        stream.PushMovement(events[next_event]);
        ++next_event;
      }
      const StreamEmission emission = stream.PushDecision(d);
      PrintStreamLine(id, emission.decision_index, /*is_final=*/false,
                      emission.label, emission.probabilities);
    }
    while (next_event < events.size()) {
      stream.PushMovement(events[next_event]);
      ++next_event;
    }
    const StreamEmission final_emission = stream.Finalize();
    PrintStreamLine(id, final_emission.decision_index, /*is_final=*/true,
                    final_emission.label, final_emission.probabilities);
  }
  return 0;
}

int CmdFuse(const Args& args) {
  const std::string dir = args.Get("dir");
  const long rows = args.GetLong("rows", 0);
  const long cols = args.GetLong("cols", 0);
  if (dir.empty() || rows <= 0 || cols <= 0) return Usage();
  const LoadedStudy study =
      Load(dir, static_cast<std::size_t>(rows),
           static_cast<std::size_t>(cols));

  const auto measures = ComputeAllMeasures(study.input);
  const ExpertThresholds thresholds = FitThresholds(measures);
  const auto labels = LabelsFromMeasures(measures, thresholds);

  std::vector<matching::MatchMatrix> matrices;
  for (const auto& view : study.input.matchers) {
    matrices.push_back(
        view.history->ToMatrix(view.source_size, view.target_size));
  }
  const auto flat = FuseCrowd(
      matrices, std::vector<double>(matrices.size(), 1.0));
  const auto weighted =
      FuseCrowd(matrices, ExpertiseWeights(labels));
  const MatchQuality flat_quality =
      EvaluateMatch(flat, study.reference);
  const MatchQuality weighted_quality =
      EvaluateMatch(weighted, study.reference);
  std::printf("crowd fusion over %zu matchers:\n", matrices.size());
  std::printf("  flat vote:          P=%.2f R=%.2f F1=%.2f\n",
              flat_quality.precision, flat_quality.recall,
              flat_quality.f1);
  std::printf("  expertise-weighted: P=%.2f R=%.2f F1=%.2f\n",
              weighted_quality.precision, weighted_quality.recall,
              weighted_quality.f1);
  return 0;
}

int CmdBundle(const Args& args) {
  const std::string dir = args.Get("dir");
  const std::string out = args.Get("out");
  const long rows = args.GetLong("rows", 0);
  const long cols = args.GetLong("cols", 0);
  if (dir.empty() || out.empty() || rows <= 0 || cols <= 0) return Usage();
  const LoadedStudy study =
      Load(dir, static_cast<std::size_t>(rows),
           static_cast<std::size_t>(cols));

  // The stream/characterize training recipe: population thresholds, one
  // full MExI_50 fit. Training is pinned exact (TrainingScope), so the
  // bundle bytes are reproducible run to run.
  const auto measures = ComputeAllMeasures(study.input);
  const ExpertThresholds thresholds = FitThresholds(measures);
  const auto labels = LabelsFromMeasures(measures, thresholds);
  Mexi model(Mexi50Config());
  model.Fit(study.input.matchers, labels, study.input.context);

  serve::SaveBundle(out, model);
  std::printf("wrote bundle %s (fingerprint=%llu, %zu matchers trained)\n",
              out.c_str(),
              static_cast<unsigned long long>(model.ConfigFingerprint()),
              study.input.matchers.size());
  return 0;
}

int CmdSweep(const Args& args) {
  const std::string out = args.Get("out");
  if (out.empty()) return Usage();
  SweepConfig config;
  config.population =
      static_cast<std::size_t>(args.GetLong("population", 2000));
  config.shard_size =
      static_cast<std::size_t>(args.GetLong("shard-size", 512));
  config.train_matchers =
      static_cast<std::size_t>(args.GetLong("train-matchers", 64));
  config.seed = static_cast<std::uint64_t>(args.GetLong("seed", 42));
  config.task = args.Get("task", "po");
  const std::string mix = args.Get("mix", "wide");
  if (mix == "wide") {
    config.mix = sim::WidePopulationMix();
  } else if (mix == "paper") {
    config.mix = sim::PopulationMix();
  } else {
    return Usage();
  }
  config.checkpoint_dir = args.Get("checkpoint-dir");
  config.resume = args.Has("resume");
  const long batch_size = args.GetLong("batch-size", 64);
  if (batch_size < 1) return Usage();
  config.model.batch_size = static_cast<std::size_t>(batch_size);

  PopulationSweeper sweeper(config);
  const SweepAggregates& aggregates = sweeper.Run();

  const std::string json = aggregates.ToJson();
  std::FILE* file = std::fopen(out.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
    return 1;
  }
  std::fputs(json.c_str(), file);
  std::fputc('\n', file);
  std::fclose(file);

  std::printf("sweep: %llu matchers, %llu decisions "
              "(%zu shards of %zu, task %s)\n",
              static_cast<unsigned long long>(aggregates.matchers()),
              static_cast<unsigned long long>(aggregates.decisions()),
              sweeper.num_shards(), config.shard_size,
              config.task.c_str());
  for (std::size_t a = 0; a < sim::kNumArchetypes; ++a) {
    const auto& agg =
        aggregates.archetype(static_cast<sim::Archetype>(a));
    if (agg.matchers == 0) continue;
    std::printf("  %-22s %8llu matchers  full experts: "
                "true %llu / predicted %llu\n",
                sim::ArchetypeName(static_cast<sim::Archetype>(a)).c_str(),
                static_cast<unsigned long long>(agg.matchers),
                static_cast<unsigned long long>(agg.true_full_expert),
                static_cast<unsigned long long>(agg.predicted_full_expert));
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace

namespace {

/// FNV-1a over the full command line: a cheap configuration fingerprint
/// for the run manifest, so two runs are comparable at a glance.
std::uint64_t ArgvFingerprint(int argc, char** argv) {
  std::uint64_t hash = mexi::robust::kFnvOffsetBasis;
  for (int i = 1; i < argc; ++i) {
    hash = mexi::robust::Fnv1a(argv[i], std::strlen(argv[i]) + 1, hash);
  }
  return hash;
}

int RunCommand(const Args& args) {
  if (args.command == "simulate") return CmdSimulate(args);
  if (args.command == "measure") return CmdMeasure(args);
  if (args.command == "characterize") return CmdCharacterize(args);
  if (args.command == "fuse") return CmdFuse(args);
  if (args.command == "stream") return CmdStream(args);
  if (args.command == "bundle") return CmdBundle(args);
  if (args.command == "sweep") return CmdSweep(args);
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  auto& hub = mexi::obs::Observability::Global();
  int rc = 1;
  try {
    const long threads = args.GetLong("threads", -1);
    if (threads >= 0) {
      parallel::SetThreads(static_cast<std::size_t>(threads));
    }
    // Serve-path default: characterize runs with the gated fast math on
    // unless the user opts out (--exact-math) or the environment pins it
    // off (MEXI_FAST_MATH=0). Training inside any command stays exact
    // regardless, via the TrainingScope contract.
    if (args.Has("exact-math")) {
      mexi::ml::vmath::SetFastMath(false);
    } else if (args.Has("fast-math")) {
      mexi::ml::vmath::SetFastMath(true);
    } else if (args.command == "characterize" || args.command == "stream" ||
               args.command == "sweep") {
      const char* env = std::getenv("MEXI_FAST_MATH");
      const bool env_off = env != nullptr && env[0] == '0' && env[1] == '\0';
      if (!env_off) mexi::ml::vmath::SetFastMath(true);
    }
    const std::string metrics_out = args.Get("metrics-out");
    if (!metrics_out.empty()) hub.EnableMetrics(metrics_out);
    const std::string status_path = args.Get("status-file");
    if (!status_path.empty()) hub.SetStatusFile(status_path);
    if (hub.metrics_enabled()) {
      std::string command_line = argv[0];
      for (int i = 1; i < argc; ++i) {
        command_line += ' ';
        command_line += argv[i];
      }
      hub.SetManifest(
          {mexi::obs::F("command", command_line),
           mexi::obs::F("subcommand", args.command),
           mexi::obs::F("seed", args.GetLong("seed", 42)),
           mexi::obs::F("config_fingerprint", ArgvFingerprint(argc, argv)),
           mexi::obs::F("threads",
                        static_cast<std::uint64_t>(
                            parallel::EffectiveThreads()))});
    }
    if (auto* status = hub.status()) {
      mexi::obs::StatusUpdate update;
      update.phase = args.command.empty() ? "usage" : args.command;
      status->Update(update);
    }
    rc = RunCommand(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  hub.Shutdown();
  return rc;
}
