// Entity-resolution transfer: the paper's Section VI proposes extending
// expertise characterization to entity resolution, where humans judge
// whether records refer to the same real-world entity. This example
// trains MExI on the schema-matching (PO) crowd and characterizes
// matchers of a customer-record alignment task — the attribute-matching
// step of an ER pipeline.

#include <cstdio>

#include "core/evaluation.h"
#include "core/mexi.h"
#include "sim/study.h"

namespace {

mexi::EvaluationInput ViewsOf(const mexi::sim::Study& study) {
  mexi::EvaluationInput input;
  input.reference = &study.reference;
  input.context.source_size = study.task.source.size();
  input.context.target_size = study.task.target.size();
  for (const auto& m : study.matchers) {
    mexi::MatcherView view;
    view.history = &m.history;
    view.movement = &m.movement;
    view.warmup_history = &m.warmup_history;
    view.source_size = study.task.source.size();
    view.target_size = study.task.target.size();
    input.matchers.push_back(view);
  }
  return input;
}

}  // namespace

int main() {
  using namespace mexi;

  sim::StudyConfig po_config;
  po_config.num_matchers = 60;
  po_config.seed = 42;
  const sim::Study po = sim::BuildPurchaseOrderStudy(po_config);

  sim::StudyConfig er_config;
  er_config.num_matchers = 24;
  er_config.seed = 99;
  const sim::Study er = sim::BuildStudy(
      schema::GenerateEntityResolutionTask(2022), er_config);

  std::printf("train: schema matching, %zu x %zu elements, %zu matchers\n",
              po.task.source.size(), po.task.target.size(),
              po.matchers.size());
  std::printf("test:  entity resolution, %zu x %zu record fields, %zu "
              "matchers\n\n",
              er.task.source.size(), er.task.target.size(),
              er.matchers.size());

  const EvaluationInput po_input = ViewsOf(po);
  const EvaluationInput er_input = ViewsOf(er);

  const auto po_measures = ComputeAllMeasures(po_input);
  const ExpertThresholds thresholds = FitThresholds(po_measures);
  const auto po_labels = LabelsFromMeasures(po_measures, thresholds);

  Mexi mexi(Mexi50Config());
  mexi.Fit(po_input.matchers, po_labels, po_input.context);
  // Consensuality is a property of the population being characterized.
  mexi.AdaptToPopulation(er_input.matchers);

  const auto er_measures = ComputeAllMeasures(er_input);
  const auto er_labels = LabelsFromMeasures(er_measures, thresholds);
  const auto predictions = mexi.CharacterizeAll(er_input.matchers);

  const auto a_c = PerLabelAccuracy(er_labels, predictions);
  std::printf("schema-matching -> entity-resolution transfer accuracy:\n");
  const auto& names = CharacteristicNames();
  for (std::size_t c = 0; c < names.size(); ++c) {
    std::printf("  A_%-10s = %.2f\n", names[c].c_str(), a_c[c]);
  }
  std::printf("  A_ML         = %.2f\n",
              MultiLabelAccuracy(er_labels, predictions));
  std::printf(
      "\nThe behavioral encoding carries over: the paper's future-work\n"
      "claim that expertise characterization extends to entity\n"
      "resolution holds for the attribute-alignment step.\n");
  return 0;
}
