#!/usr/bin/env python3
"""Convert a MExI metrics.jsonl stream into Chrome trace-event JSON.

The observability hub (src/obs) appends one JSON object per line to
<dir>/metrics.jsonl: "span" records (closed trace spans on the shared
steady clock), "event" records (low-frequency instants such as epoch
ends, checkpoints and injected faults), one leading "meta" record, and
flush-time metric snapshots ("counter"/"gauge"/"timer"/"histogram").

This tool maps the timestamped records onto the Chrome trace-event
format so a run can be explored in chrome://tracing or https://ui.
perfetto.dev:

  span   -> complete event  (ph "X", ts/dur in microseconds)
  event  -> instant event   (ph "i", thread scope, fields as args)
  meta   -> process metadata (ph "M" process_name + run args)

Streaming-characterization spans ("stream.decision", "stream.finalize";
see src/core/streaming.cc) get extra treatment so a per-decision run
reads as a stream rather than an undifferentiated span pile: they are
categorized as cat "stream", each stream.decision span carries its
1-based per-thread decision index as an arg, and a "stream decisions"
counter track (ph "C") plots the cumulative decision count over time —
the slope of that track is the live decisions/sec of the run.

Timestamp-free snapshot records cannot be placed on the timeline and
are skipped (counted on stderr). Malformed lines are tolerated the same
way: a crashed producer leaves a usable prefix behind, and a trace
viewer beats a JSON parse error when you are debugging that crash.

Usage:
  tools/trace_to_chrome.py OBS_DIR/metrics.jsonl [-o out.trace.json]
"""

import argparse
import json
import sys


def thread_label(mapping, thread_hash):
    """Stable small tid for a thread hash, in order of first appearance."""
    if thread_hash not in mapping:
        mapping[thread_hash] = len(mapping) + 1
    return mapping[thread_hash]


def convert(lines):
    """Returns (trace_events, stats) for an iterable of JSONL lines."""
    events = []
    tids = {}
    decision_index = {}  # tid -> running stream.decision count
    decisions_total = 0
    stats = {"spans": 0, "events": 0, "skipped": 0, "malformed": 0,
             "stream": 0}
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            kind = record["type"]
        except (json.JSONDecodeError, TypeError, KeyError):
            stats["malformed"] += 1
            continue
        if kind == "span":
            try:
                tid = thread_label(tids, record["thread"])
                name = record["name"]
                span = {
                    "name": name,
                    "ph": "X",
                    "ts": record["start_ns"] / 1e3,
                    "dur": record["dur_ns"] / 1e3,
                    "pid": 1,
                    "tid": tid,
                    "args": {
                        "id": record.get("id"),
                        "parent": record.get("parent"),
                        "depth": record.get("depth"),
                        "seq": record.get("seq"),
                    },
                }
                if name.startswith("stream."):
                    span["cat"] = "stream"
                    stats["stream"] += 1
                    if name == "stream.decision":
                        decision_index[tid] = decision_index.get(tid, 0) + 1
                        span["args"]["decision"] = decision_index[tid]
                        decisions_total += 1
                        # Cumulative-decisions counter track: its slope
                        # is the run's live decisions/sec.
                        events.append({
                            "name": "stream decisions",
                            "ph": "C",
                            "ts": (record["start_ns"] +
                                   record["dur_ns"]) / 1e3,
                            "pid": 1,
                            "args": {"decisions": decisions_total},
                        })
                events.append(span)
                stats["spans"] += 1
            except (KeyError, TypeError):
                stats["malformed"] += 1
        elif kind == "event":
            try:
                events.append({
                    "name": record["name"],
                    "ph": "i",
                    "s": "t",
                    "ts": record["t_ns"] / 1e3,
                    "pid": 1,
                    # Events carry no thread hash; park them on the
                    # first (main) thread lane.
                    "tid": thread_label(tids, "main"),
                    "args": record.get("fields", {}),
                })
                stats["events"] += 1
            except (KeyError, TypeError):
                stats["malformed"] += 1
        elif kind == "meta":
            args = {k: v for k, v in record.items() if k != "type"}
            events.append({
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "args": {"name": "mexi"},
            })
            events.append({
                "name": "mexi_run_meta",
                "ph": "M",
                "pid": 1,
                "args": args,
            })
        else:
            stats["skipped"] += 1
    # Name the thread lanes so the viewer shows something better than
    # raw hashes.
    for thread_hash, tid in tids.items():
        name = "main" if thread_hash == "main" or tid == 1 else (
            "worker-%d" % (tid - 1))
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": name},
        })
    return events, stats


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="metrics.jsonl -> Chrome trace-event JSON")
    parser.add_argument("jsonl", help="path to metrics.jsonl")
    parser.add_argument(
        "-o", "--out",
        help="output path (default: <input>.trace.json)")
    args = parser.parse_args(argv)
    out_path = args.out or args.jsonl + ".trace.json"

    with open(args.jsonl, "r", encoding="utf-8") as f:
        events, stats = convert(f)

    with open(out_path, "w", encoding="utf-8") as f:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, f,
                  indent=1)
        f.write("\n")

    print(
        "trace_to_chrome: %d spans, %d instants -> %s"
        % (stats["spans"], stats["events"], out_path),
        file=sys.stderr)
    if stats["stream"]:
        print(
            "trace_to_chrome: %d stream spans rendered on the 'stream' "
            "category" % stats["stream"], file=sys.stderr)
    if stats["skipped"]:
        print(
            "trace_to_chrome: skipped %d timestamp-free snapshot records"
            % stats["skipped"], file=sys.stderr)
    if stats["malformed"]:
        print(
            "trace_to_chrome: tolerated %d malformed lines"
            % stats["malformed"], file=sys.stderr)
    if stats["spans"] == 0 and stats["events"] == 0:
        print("trace_to_chrome: no timestamped records found",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
