// mexi_bench_client — a small retrying HTTP client for mexi_serve.
//
// Speaks just enough HTTP/1.1 to drive the serve endpoints from shell
// scripts and chaos drills: POST a trace body (or GET a status page),
// parse Content-Length or chunked responses, and retry transient
// failures — connect errors, resets mid-response, and 503 sheds — with
// capped exponential backoff plus deterministic jitter. A 503 carrying
// Retry-After sleeps at least that long, as the server asked.
//
//   mexi_bench_client --port 8080 --path /status
//   mexi_bench_client --port 8080 --path '/characterize?rows=6&cols=6' \
//       --body-file traces.csv --deadline-ms 5000 --retries 5
//
// Exit codes: 0 = final attempt got 2xx; 1 = exhausted retries or a
// non-retryable (4xx/5xx other than 503) answer; 2 = usage.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "stats/rng.h"

namespace {

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string path = "/status";
  std::string body_file;     // empty = GET
  long deadline_ms = 0;      // 0 = server default (no header)
  int retries = 5;           // retry attempts after the first try
  long base_backoff_ms = 50; // doubled per attempt, capped below
  long max_backoff_ms = 2000;
  std::uint64_t seed = 1;    // jitter stream (deterministic)
  bool quiet = false;        // suppress the response body
};

struct Response {
  bool transport_ok = false;  // full response parsed off the wire
  int status = 0;
  std::string retry_after;
  std::string body;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: mexi_bench_client [--host H] --port N [--path P]\n"
      "  [--body-file F] [--deadline-ms N] [--retries N]\n"
      "  [--base-backoff-ms N] [--max-backoff-ms N] [--seed S] [--quiet]\n"
      "POSTs F (GET without --body-file) to P, retrying connect errors,\n"
      "resets, and 503 sheds with capped exponential backoff + jitter,\n"
      "honoring Retry-After.\n");
  return 2;
}

int ConnectTo(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads and parses one HTTP response (Content-Length or chunked).
Response ReadResponse(int fd) {
  Response response;
  std::string data;
  char buffer[16384];
  std::size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return response;  // reset/EOF before the header block: retryable
    }
    data.append(buffer, static_cast<std::size_t>(n));
    header_end = data.find("\r\n\r\n");
  }

  const std::string head = data.substr(0, header_end);
  std::string rest = data.substr(header_end + 4);
  if (head.size() < 12 || head.compare(0, 5, "HTTP/") != 0) return response;
  response.status = std::atoi(head.c_str() + 9);

  std::size_t content_length = 0;
  bool chunked = false;
  std::istringstream head_in(head);
  std::string line;
  std::getline(head_in, line);  // status line
  while (std::getline(head_in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    std::string value = line.substr(colon + 1);
    const std::size_t start = value.find_first_not_of(" \t");
    value = start == std::string::npos ? "" : value.substr(start);
    if (name == "content-length") {
      content_length = static_cast<std::size_t>(std::atol(value.c_str()));
    } else if (name == "transfer-encoding" && value == "chunked") {
      chunked = true;
    } else if (name == "retry-after") {
      response.retry_after = value;
    }
  }

  auto read_more = [&]() -> bool {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) return false;
    rest.append(buffer, static_cast<std::size_t>(n));
    return true;
  };

  if (!chunked) {
    while (rest.size() < content_length) {
      if (!read_more()) return response;  // truncated: retryable
    }
    response.body = rest.substr(0, content_length);
    response.transport_ok = true;
    return response;
  }

  // Chunked: decode until the zero-length terminator.
  std::size_t pos = 0;
  while (true) {
    std::size_t line_end;
    while ((line_end = rest.find("\r\n", pos)) == std::string::npos) {
      if (!read_more()) return response;
    }
    const std::size_t chunk_size = static_cast<std::size_t>(
        std::strtoul(rest.c_str() + pos, nullptr, 16));
    pos = line_end + 2;
    if (chunk_size == 0) {
      response.transport_ok = true;
      return response;
    }
    while (rest.size() < pos + chunk_size + 2) {
      if (!read_more()) return response;
    }
    response.body.append(rest, pos, chunk_size);
    pos += chunk_size + 2;  // skip the trailing CRLF
  }
}

Response DoRequest(const Options& options, const std::string& body) {
  Response response;
  const int fd = ConnectTo(options.host, options.port);
  if (fd < 0) return response;
  const char* method = options.body_file.empty() ? "GET" : "POST";
  std::string request = std::string(method) + " " + options.path +
                        " HTTP/1.1\r\nHost: " + options.host +
                        "\r\nConnection: close\r\n";
  if (options.deadline_ms > 0) {
    request += "X-Deadline-Ms: " + std::to_string(options.deadline_ms) + "\r\n";
  }
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  request += body;
  if (SendAll(fd, request)) response = ReadResponse(fd);
  ::close(fd);
  return response;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--host" && has_value) {
      options.host = argv[++i];
    } else if (arg == "--port" && has_value) {
      options.port = std::atoi(argv[++i]);
    } else if (arg == "--path" && has_value) {
      options.path = argv[++i];
    } else if (arg == "--body-file" && has_value) {
      options.body_file = argv[++i];
    } else if (arg == "--deadline-ms" && has_value) {
      options.deadline_ms = std::atol(argv[++i]);
    } else if (arg == "--retries" && has_value) {
      options.retries = std::atoi(argv[++i]);
    } else if (arg == "--base-backoff-ms" && has_value) {
      options.base_backoff_ms = std::atol(argv[++i]);
    } else if (arg == "--max-backoff-ms" && has_value) {
      options.max_backoff_ms = std::atol(argv[++i]);
    } else if (arg == "--seed" && has_value) {
      options.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      return Usage();
    }
  }
  if (options.port <= 0) return Usage();

  std::string body;
  if (!options.body_file.empty()) {
    std::ifstream in(options.body_file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "mexi_bench_client: cannot read %s\n",
                   options.body_file.c_str());
      return 1;
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    body = contents.str();
  }

  mexi::stats::Rng rng(options.seed);
  long backoff_ms = options.base_backoff_ms;
  for (int attempt = 0; attempt <= options.retries; ++attempt) {
    const Response response = DoRequest(options, body);
    if (response.transport_ok && response.status / 100 == 2) {
      if (!options.quiet) std::fwrite(response.body.data(), 1,
                                      response.body.size(), stdout);
      return 0;
    }
    const bool retryable = !response.transport_ok || response.status == 503;
    if (!retryable || attempt == options.retries) {
      std::fprintf(stderr,
                   "mexi_bench_client: giving up after attempt %d "
                   "(status=%d transport_ok=%d)\n%s",
                   attempt + 1, response.status,
                   response.transport_ok ? 1 : 0, response.body.c_str());
      return 1;
    }
    // Backoff: the server's Retry-After is a floor; jitter spreads
    // synchronized retriers (full jitter over [backoff/2, backoff]).
    long sleep_ms =
        backoff_ms / 2 + static_cast<long>(rng.UniformIndex(
                             static_cast<std::size_t>(backoff_ms / 2 + 1)));
    if (!response.retry_after.empty()) {
      const long retry_after_ms = std::atol(response.retry_after.c_str()) * 1000;
      if (retry_after_ms > sleep_ms) sleep_ms = retry_after_ms;
    }
    std::fprintf(stderr,
                 "mexi_bench_client: attempt %d failed (status=%d), "
                 "retrying in %ldms\n",
                 attempt + 1, response.status, sleep_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    backoff_ms = std::min(backoff_ms * 2, options.max_backoff_ms);
  }
  return 1;
}
